"""RunSpec: one declarative, fingerprint-able description of a simulation run.

Every execution in this repository — a slot-by-slot :class:`SlotSimulator`
run or a Poisson-thinning :class:`VectorizedSimulator` run — is a pure
function of a small set of inputs: contention size, the protocol (a
non-adaptive :class:`~repro.core.protocol.ProbabilitySchedule` or a
stateful :class:`~repro.core.protocol.Protocol` factory), the adversary,
the feedback model, the stop condition, jamming, the horizon and the seed.
:class:`RunSpec` captures exactly that set in one frozen dataclass, so

* engine selection is a *property of the spec*, not of the caller
  (see :func:`repro.engine.execute` and the admissibility rules there);
* checkpoint journal keys are derived from the spec
  (:meth:`RunSpec.fingerprint`), so the journal key and the run
  construction can never drift apart;
* probability/hazard tables are cached per schedule fingerprint
  (:mod:`repro.engine.cache`) instead of being recomputed per repetition.

A spec is *declarative*: constructing one performs no simulation work and
touches no RNG.  ``execute(spec)`` (or ``execute(spec, engine=...)``) runs
it.  Two specs that fingerprint identically describe runs drawn from the
same distribution; adding the seed pins one exact execution.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Callable, Iterable
from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from repro.adversary.base import AdaptiveAdversary, ArrivalProcess, WakeSchedule
from repro.channel.feedback import FeedbackModel
from repro.channel.results import StopCondition
from repro.core.protocol import ProbabilitySchedule, Protocol, ScheduleProtocol
from repro.faults import FaultModel

__all__ = [
    "RunSpec",
    "stable_token",
    "adversary_token",
    "arrival_token",
    "QUEUE_DISCIPLINES",
]

ProtocolFactory = Callable[[], Protocol]
ProtocolLike = Union[ProbabilitySchedule, ProtocolFactory]
Adversary = Union[WakeSchedule, AdaptiveAdversary]


def stable_token(value: object) -> object:
    """A process-independent fingerprint token for a config attribute.

    Primitives pass through; objects contribute their ``name`` (the
    convention every schedule/adversary here follows) or class name —
    never their ``repr``, which may embed a memory address and would
    break fingerprint stability across resumed processes.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (tuple, list)):
        return tuple(stable_token(v) for v in value)
    name = getattr(value, "name", None)
    if isinstance(name, str):
        return name
    return type(value).__name__


#: Legal values of :attr:`RunSpec.queue_discipline` (traffic runs only).
#: ``free``: every queued packet contends independently from its arrival
#: round (the station is a label, not a serialisation point) — reduces to
#: the classic model, so it runs on every engine.  ``fifo``: each station
#: transmits only its head-of-line packet; the next packet's protocol
#: starts when it reaches the head — history-dependent, object engine only.
QUEUE_DISCIPLINES = ("free", "fifo")


def arrival_token(arrivals: ArrivalProcess, stations: int, horizon: int) -> object:
    """Fingerprint an arrival process: its name plus a bounded digest of a
    canonical draw (distinguishes e.g. two ``FixedArrivals`` instances that
    share the generic name but carry different packet lists)."""
    try:
        rounds, origins = arrivals.draw(
            stations, horizon, np.random.default_rng(0)
        )
        sample: object = (
            int(rounds.size),
            int(rounds.sum()),
            int(origins.sum()),
            tuple(int(r) for r in rounds[:64]),
            tuple(int(o) for o in origins[:64]),
        )
    except Exception:
        sample = None
    return ("arrivals", stable_token(arrivals), stations, horizon, sample)


def adversary_token(adversary: Adversary, k: int) -> object:
    """Fingerprint an adversary: its name plus, for oblivious schedules, a
    canonical wake draw (distinguishes e.g. two ``FixedSchedule`` instances
    that share the generic name but carry different rounds)."""
    if isinstance(adversary, WakeSchedule):
        try:
            sample = tuple(
                int(r) for r in adversary.wake_rounds(k, np.random.default_rng(0))
            )
        except Exception:
            sample = None
        return (stable_token(adversary), sample)
    return ("adaptive", stable_token(adversary), type(adversary).__name__)


@dataclass(frozen=True)
class RunSpec:
    """One simulation run, described declaratively.

    Args:
        k: number of contending stations (>= 1).
        protocol: either a :class:`ProbabilitySchedule` instance (shared by
            every station, the paper's anonymity) or a zero-argument
            callable producing a fresh :class:`Protocol` per station.
        adversary: a :class:`WakeSchedule` (oblivious) or
            :class:`AdaptiveAdversary` (online).
        feedback: channel feedback model; the paper's protocols use
            ACK_ONLY.  Only consulted by the object engine.
        stop: completion criterion.
        switch_off_on_ack: the paper's default semantics; False for the
            no-acknowledgement variant.  Only meaningful for schedule runs
            (protocol factories own their switch-off logic).
        max_rounds: explicit global-round horizon; ``None`` defers to the
            :meth:`resolve_horizon` policy
            (:func:`~repro.channel.simulator.default_max_rounds`).
        record_trace: keep the full per-round event log on the result
            (forces the object engine).
        jammer: an adaptive/stateful :class:`~repro.channel.jamming.Jammer`
            (forces the object engine).
        jam_rounds: an oblivious set of jammed global rounds; runs on both
            engines (the object engine wraps it in a
            :class:`~repro.channel.jamming.ScheduledJammer`).  Mutually
            exclusive with ``jammer``.
        arrivals: a dynamic-arrival traffic source
            (:class:`~repro.adversary.base.ArrivalProcess`).  When set, the
            run is a *traffic* run: ``k`` counts station *queues*, packets
            arrive over time, and ``adversary`` must be None (the arrival
            process *is* the oblivious adversary).  Requires an explicit
            ``max_rounds`` — the horizon is part of the traffic model.
        queue_discipline: ``"free"`` (default; every queued packet contends
            independently — engine-portable via the traffic reduction) or
            ``"fifo"`` (stations serialise their queue — object engine
            only).  Only meaningful for traffic runs.
        faults: a :class:`~repro.faults.FaultModel` describing channel
            noise, ack loss, and/or per-station energy budgets; ``None``
            (the default) is the paper's ideal channel.  Oblivious
            noise/ack-loss runs on every engine; energy budgets force the
            object engine.  Not supported with ``fifo`` queueing.
        seed: base seed for all randomness (None = OS entropy; such a spec
            cannot be journaled).
        label: reporting label; folded into protocol-run fingerprints to
            disambiguate configurations a class cannot express.
    """

    k: int
    protocol: ProtocolLike
    adversary: Optional[Adversary] = None
    feedback: FeedbackModel = FeedbackModel.ACK_ONLY
    stop: StopCondition = StopCondition.ALL_SWITCHED_OFF
    switch_off_on_ack: bool = True
    max_rounds: Optional[int] = None
    record_trace: bool = False
    jammer: Optional[object] = None
    jam_rounds: Optional[tuple[int, ...]] = None
    arrivals: Optional[ArrivalProcess] = None
    queue_discipline: str = "free"
    faults: Optional[FaultModel] = None
    seed: Optional[int] = None
    label: str = ""

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError(f"need at least one station, got k={self.k}")
        if not isinstance(self.protocol, ProbabilitySchedule) and not callable(
            self.protocol
        ):
            raise TypeError(
                "protocol must be a ProbabilitySchedule or a zero-argument "
                f"Protocol factory, got {type(self.protocol).__name__}"
            )
        if self.queue_discipline not in QUEUE_DISCIPLINES:
            raise ValueError(
                f"unknown queue_discipline {self.queue_discipline!r}; "
                f"known: {QUEUE_DISCIPLINES}"
            )
        if self.arrivals is not None:
            if not isinstance(self.arrivals, ArrivalProcess):
                raise TypeError(
                    "arrivals must be an ArrivalProcess, "
                    f"got {type(self.arrivals).__name__}"
                )
            if self.adversary is not None:
                raise ValueError(
                    "arrivals and adversary are mutually exclusive: the "
                    "arrival process is the traffic run's oblivious adversary"
                )
            if self.max_rounds is None:
                raise ValueError(
                    "traffic runs need an explicit max_rounds: the horizon "
                    "is part of the arrival model"
                )
        elif self.adversary is None:
            raise TypeError(
                "adversary is required unless this is a traffic run "
                "(arrivals=...)"
            )
        elif not isinstance(self.adversary, (WakeSchedule, AdaptiveAdversary)):
            raise TypeError(
                "adversary must be a WakeSchedule or AdaptiveAdversary, "
                f"got {type(self.adversary).__name__}"
            )
        if self.max_rounds is not None and self.max_rounds < 1:
            raise ValueError(f"max_rounds must be >= 1, got {self.max_rounds}")
        if self.jammer is not None and self.jam_rounds is not None:
            raise ValueError(
                "jammer and jam_rounds are mutually exclusive: jam_rounds is "
                "the oblivious (engine-portable) form, jammer the stateful one"
            )
        if self.jam_rounds is not None:
            rounds: Iterable[int] = self.jam_rounds  # type: ignore[assignment]
            object.__setattr__(
                self, "jam_rounds", tuple(sorted({int(r) for r in rounds}))
            )
        if self.faults is not None:
            if not isinstance(self.faults, FaultModel):
                raise TypeError(
                    f"faults must be a FaultModel, got {type(self.faults).__name__}"
                )
            if self.arrivals is not None and self.queue_discipline == "fifo":
                raise ValueError(
                    "faults are not supported with fifo queueing: the queue "
                    "simulator has no fault path; use the free discipline"
                )

    # ------------------------------------------------------------------ kind

    @property
    def is_schedule_run(self) -> bool:
        """True when the protocol is a non-adaptive probability schedule."""
        return isinstance(self.protocol, ProbabilitySchedule)

    @property
    def is_traffic_run(self) -> bool:
        """True when this spec describes dynamic-arrival (queued) traffic."""
        return self.arrivals is not None

    @property
    def schedule(self) -> ProbabilitySchedule:
        if not self.is_schedule_run:
            raise TypeError("this RunSpec describes a protocol-factory run")
        return self.protocol  # type: ignore[return-value]

    @property
    def protocol_factory(self) -> ProtocolFactory:
        """A zero-argument factory for the object engine, for either kind.

        Schedule specs are adapted through :class:`ScheduleProtocol`, which
        is exactly how the object engine has always run non-adaptive
        schedules — the two views stay byte-identical per seed.
        """
        if self.is_schedule_run:
            schedule = self.schedule
            ack = self.switch_off_on_ack

            def factory() -> Protocol:
                return ScheduleProtocol(schedule, switch_off_on_ack=ack)

            factory.protocol_name = getattr(  # type: ignore[attr-defined]
                schedule, "name", "schedule"
            )
            return factory
        return self.protocol  # type: ignore[return-value]

    @property
    def protocol_probe(self) -> Protocol:
        """A fresh, never-run instance of the per-station protocol.

        The capability surface for engines that need to *inspect* the
        protocol without executing it: :meth:`fingerprint` digests the
        probe's public attributes, and the compiled engine's lowering pass
        (:mod:`repro.engine.compile`) pattern-matches the probe's exact
        type to decide whether the spec is compiled-admissible and to read
        the machine's constants (e.g. ``AdaptiveNoK.q``).  Constructing a
        probe touches no RNG — protocols only draw after ``begin()``.
        """
        return self.protocol_factory()

    @property
    def display_label(self) -> str:
        """The reporting label: explicit ``label`` or the protocol's name."""
        if self.label:
            return self.label
        if self.is_schedule_run:
            return getattr(self.schedule, "name", "schedule")
        return getattr(self.protocol, "protocol_name", "protocol")

    # --------------------------------------------------------------- horizon

    def resolve_horizon(self) -> int:
        """The effective global-round horizon of this run.

        Explicit ``max_rounds`` wins; otherwise the single repository-wide
        policy :func:`~repro.channel.simulator.default_max_rounds` applies
        (generous enough for every paper protocol at any realistic
        constant, bounded enough to stop runaway executions).  Drivers
        should only pass ``max_rounds`` when the horizon is itself part of
        the experiment (a theorem's bound, a jamming budget).
        """
        if self.max_rounds is not None:
            return self.max_rounds
        from repro.channel.simulator import default_max_rounds

        return default_max_rounds(self.k)

    # ----------------------------------------------------------- convenience

    def with_seed(self, seed: Optional[int]) -> "RunSpec":
        """A copy of this spec pinned to ``seed`` (repetition fan-out)."""
        return dataclasses.replace(self, seed=seed)

    def replace(self, **changes: object) -> "RunSpec":
        """``dataclasses.replace`` with revalidation."""
        return dataclasses.replace(self, **changes)  # type: ignore[arg-type]

    # ------------------------------------------------------------ fingerprint

    def fingerprint(self, prob_table: Optional[np.ndarray] = None) -> str:
        """The checkpoint journal key of this configuration (seed excluded).

        Everything that shapes the run's outcome besides the seed is
        digested.  For schedule runs the probability table itself is hashed
        (truncated to its first 4096 entries plus a checksum of the whole),
        so two configurations that differ only in a schedule constant can
        never satisfy each other's journal entries; ``prob_table`` may be
        passed to reuse a table already in hand, otherwise it is fetched
        from the per-process cache.  Protocol-factory runs capture the
        probe instance's public attributes (primitives and named
        sub-objects only) plus the caller's ``label``.
        """
        from repro.experiments.checkpoint import config_fingerprint

        horizon = self.resolve_horizon()
        jam_token: object = None
        if self.jam_rounds is not None:
            jam_token = ("jam_rounds", self.jam_rounds)
        elif self.jammer is not None:
            jam_token = ("jammer", stable_token(self.jammer))
        if self.is_traffic_run:
            adv_token: object = (
                arrival_token(self.arrivals, self.k, horizon),
                self.queue_discipline,
            )
        else:
            adv_token = adversary_token(self.adversary, self.k)
        fault_token: object = None if self.faults is None else self.faults.token()
        if self.is_schedule_run:
            if prob_table is None:
                from repro.engine.cache import probability_table

                prob_table = probability_table(self.schedule, horizon)
            table = np.asarray(prob_table, dtype=float)
            return config_fingerprint(
                "schedule",
                self.k,
                stable_token(self.schedule),
                self.schedule.horizon(),
                horizon,
                table[:4096].tobytes(),
                float(table.sum()),
                int(table.size),
                adv_token,
                self.switch_off_on_ack,
                self.stop.value,
                jam_token,
                fault_token,
            )
        probe = self.protocol_probe
        attrs = tuple(
            (key, stable_token(value))
            for key, value in sorted(getattr(probe, "__dict__", {}).items())
            if not key.startswith("_")
        )
        return config_fingerprint(
            "protocol",
            self.k,
            type(probe).__name__,
            getattr(self.protocol, "protocol_name", ""),
            self.label,
            attrs,
            horizon,
            adv_token,
            self.feedback.value if hasattr(self.feedback, "value") else str(self.feedback),
            self.stop.value,
            jam_token,
            fault_token,
        )
