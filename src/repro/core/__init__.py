"""Core protocol framework and the paper's algorithms."""

from repro.core.protocol import (
    ProbabilitySchedule,
    Protocol,
    ScheduleProtocol,
    Transmission,
)
from repro.core.station import Station, StationRecord

__all__ = [
    "ProbabilitySchedule",
    "Protocol",
    "ScheduleProtocol",
    "Transmission",
    "Station",
    "StationRecord",
]
