"""Core protocol framework and the paper's algorithms."""

from repro.core.protocol import (
    ProbabilitySchedule,
    Protocol,
    ScheduleProtocol,
    Transmission,
)
from repro.core.station import Station, StationRecord


def __getattr__(name: str):
    # RunSpec is exposed lazily: repro.core.spec imports channel enums for
    # its field defaults, and the channel package imports repro.core.station
    # during its own init — an eager import here would close that cycle.
    if name == "RunSpec":
        from repro.core.spec import RunSpec

        return RunSpec
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "RunSpec",
    "ProbabilitySchedule",
    "Protocol",
    "ScheduleProtocol",
    "Transmission",
    "Station",
    "StationRecord",
]
