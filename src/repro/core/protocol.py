"""Protocol interfaces.

Two levels of protocol abstraction mirror the paper's algorithm classes:

* :class:`Protocol` — the general (possibly adaptive) interface driven by the
  object engine (:class:`repro.channel.simulator.SlotSimulator`).  A protocol
  decides per local round whether to transmit and with which payload, and
  observes channel feedback.

* :class:`ProbabilitySchedule` — a *non-adaptive* protocol described purely
  by its transmission-probability sequence ``p(i)`` over the local clock
  (the paper's Section 2 formalism).  Schedules run on both engines; the
  vectorised engine exploits that ``p`` is a pure function of the local round.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.channel.feedback import Observation
from repro.channel.messages import DataPacket
from repro.util.intmath import clamp_probability

__all__ = ["Transmission", "Protocol", "ProbabilitySchedule", "ScheduleProtocol"]


@dataclass(frozen=True, slots=True)
class Transmission:
    """A decision to transmit ``payload`` in the current round."""

    payload: object


class Protocol(abc.ABC):
    """One station's algorithm, driven round-by-round by the simulator.

    Lifecycle (local clock):

    1. ``begin(station_id, rng)`` at activation (local round 0; the paper's
       convention is that a station wakes at local round 0 and may first
       transmit at local round 1).
    2. For each local round ``i >= 1``: ``decide(i)`` returns a
       :class:`Transmission` or ``None`` (listen), then ``observe(obs)``
       delivers the round's feedback.
    3. ``finished`` becomes True when the station permanently switches off.

    Implementations must not communicate outside these hooks (stations are
    anonymous and share no state).
    """

    #: Whether the protocol needs to *receive* on non-transmitting rounds.
    #: Adaptive protocols do (they react to messages); non-adaptive ones do
    #: not — their only feedback is the ack on the transmit path.  Drives
    #: the listening-slot accounting the paper's Discussion section raises.
    requires_listening: bool = True

    def __init__(self) -> None:
        self._station_id: Optional[int] = None
        self._rng: Optional[np.random.Generator] = None
        self._finished = False

    @property
    def station_id(self) -> int:
        if self._station_id is None:
            raise RuntimeError("protocol not started: begin() was never called")
        return self._station_id

    @property
    def rng(self) -> np.random.Generator:
        if self._rng is None:
            raise RuntimeError("protocol not started: begin() was never called")
        return self._rng

    @property
    def finished(self) -> bool:
        """True once the station has permanently switched off."""
        return self._finished

    def switch_off(self) -> None:
        """Permanently disable the station (the paper's 'sleeping mode')."""
        self._finished = True

    def begin(self, station_id: int, rng: np.random.Generator) -> None:
        """Activate the protocol.  Subclasses extend, call super().begin()."""
        self._station_id = station_id
        self._rng = rng

    def on_wake_round(self, wake_round: int) -> None:
        """Receive the station's global wake round.

        The paper's base model has **no global clock**, so this hook is a
        no-op and must stay unused by the paper's protocols.  It exists
        only for the global-clock model *extension* the Discussion section
        speculates about (``repro.core.protocols.global_clock``), where
        ``wake_round + local_round`` reconstructs global time.
        """

    @abc.abstractmethod
    def decide(self, local_round: int) -> Optional[Transmission]:
        """Return the transmission for this local round, or None to listen."""

    def observe(self, observation: Observation) -> None:
        """Receive the round's feedback.  Default: switch off on own ack."""
        if observation.acked:
            self.switch_off()


class ProbabilitySchedule(abc.ABC):
    """A non-adaptive protocol: a probability for every local round.

    ``probability(i)`` must be a pure function of ``i`` (>= 1) returning a
    value in [0, 1].  A schedule carries no per-execution state, so a single
    instance can describe every station in a run.
    """

    #: Human-readable name used in experiment tables.
    name: str = "schedule"

    @abc.abstractmethod
    def probability(self, local_round: int) -> float:
        """Transmission probability at local round ``local_round >= 1``."""

    def horizon(self) -> Optional[int]:
        """Number of local rounds after which the schedule stops (switches
        the station off) regardless of success, or None if unbounded."""
        return None

    def probabilities(self, up_to: int) -> np.ndarray:
        """Vector of ``probability(i)`` for ``i = 1 .. up_to`` (clamped).

        The vectorised engine precomputes this table once per run.  Rounds
        past :meth:`horizon` get probability 0.
        """
        if up_to < 0:
            raise ValueError(f"up_to must be non-negative, got {up_to}")
        horizon = self.horizon()
        table = np.empty(up_to, dtype=float)
        for i in range(1, up_to + 1):
            if horizon is not None and i > horizon:
                table[i - 1] = 0.0
            else:
                table[i - 1] = clamp_probability(self.probability(i))
        return table

    def cumulative(self, up_to: int) -> float:
        """The paper's ``s(i) = sum_{j<=i} p(j)`` evaluated at ``up_to``."""
        return float(self.probabilities(up_to).sum())

    def sample_rounds(
        self, rng: np.random.Generator, max_local: int
    ) -> Optional[np.ndarray]:
        """Directly sample the station's transmission rounds, or None.

        The paper's non-adaptive model does *not* require independence of
        transmissions across rounds (Section 2.1's footnote): a schedule is
        any random distribution over round subsets whose marginals are
        ``p(i)``.  Schedules with dependent rounds (e.g. one-per-window
        sawtooth patterns) override this to return the sorted local rounds
        (1-based) of one sampled execution; returning None (the default)
        tells the vectorised engine to treat rounds as independent
        Bernoulli and use exact Poisson thinning.
        """
        return None


class ScheduleProtocol(Protocol):
    """Adapter running a :class:`ProbabilitySchedule` on the object engine.

    Independent Bernoulli draw per round; switches off on own ack (the
    non-adaptive semantics of the paper) unless ``switch_off_on_ack`` is
    False (the no-acknowledgement variant analysed in Theorem 4.?/5.?; the
    station then transmits forever and latency is measured as first success).
    """

    #: Non-adaptive stations never need to receive (Discussion section):
    #: the ack is sensed on the transmit path and messages are ignored.
    requires_listening = False

    def __init__(self, schedule: ProbabilitySchedule, *, switch_off_on_ack: bool = True):
        super().__init__()
        self.schedule = schedule
        self.switch_off_on_ack = switch_off_on_ack
        self._horizon = schedule.horizon()

    def decide(self, local_round: int) -> Optional[Transmission]:
        if self._horizon is not None and local_round > self._horizon:
            self.switch_off()
            return None
        p = clamp_probability(self.schedule.probability(local_round))
        if p > 0.0 and self.rng.random() < p:
            return Transmission(DataPacket(origin=self.station_id))
        return None

    def observe(self, observation: Observation) -> None:
        if observation.acked and self.switch_off_on_ack:
            self.switch_off()
