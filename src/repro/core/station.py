"""Station runtime state.

A :class:`Station` wraps one :class:`~repro.core.protocol.Protocol` instance
with the bookkeeping the simulator and the metrics layer need: wake time,
local clock, transmission count, first-success round.  The paper's stations
are anonymous — ``station_id`` exists only for bookkeeping and is never made
available to protocol *logic* beyond tagging the data packet's origin.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.protocol import Protocol, Transmission

__all__ = ["Station", "StationRecord", "QueuedStation"]


@dataclass(slots=True)
class StationRecord:
    """Immutable-after-run summary of one station's execution.

    ``listening_slots`` counts rounds the station spent *receiving* — the
    channel-access cost the paper's Discussion section singles out as an
    open problem for adaptive protocols.  Non-adaptive protocols do not
    need to listen at all (their only feedback is the ack, which arrives
    on the transmit path), so their count is 0 by definition.
    """

    station_id: int
    wake_round: int
    first_success_round: Optional[int]
    switch_off_round: Optional[int]
    transmissions: int
    listening_slots: int = 0

    @property
    def succeeded(self) -> bool:
        return self.first_success_round is not None

    @property
    def latency(self) -> Optional[int]:
        """Rounds from activation to own first success (paper's latency)."""
        if self.first_success_round is None:
            return None
        return self.first_success_round - self.wake_round


class Station:
    """Live station driven by the object engine."""

    __slots__ = (
        "station_id",
        "wake_round",
        "protocol",
        "transmissions",
        "listening_slots",
        "first_success_round",
        "switch_off_round",
    )

    def __init__(
        self,
        station_id: int,
        wake_round: int,
        protocol: Protocol,
        rng: np.random.Generator,
    ):
        self.station_id = station_id
        self.wake_round = wake_round
        self.protocol = protocol
        self.transmissions = 0
        self.listening_slots = 0
        self.first_success_round: Optional[int] = None
        self.switch_off_round: Optional[int] = None
        protocol.begin(station_id, rng)
        protocol.on_wake_round(wake_round)

    def local_round(self, global_round: int) -> int:
        """Local-clock round corresponding to reference-clock ``global_round``."""
        return global_round - self.wake_round

    @property
    def active(self) -> bool:
        """Active = woken and not yet switched off."""
        return self.switch_off_round is None

    def decide(self, global_round: int) -> Optional[Transmission]:
        """Ask the protocol for this round's action; track switch-off."""
        if not self.active:
            return None
        decision = self.protocol.decide(self.local_round(global_round))
        if self.protocol.finished and self.switch_off_round is None:
            # Protocol ended (e.g. schedule horizon ran out) during decide().
            self.switch_off_round = global_round
            return None
        if decision is not None:
            self.transmissions += 1
        elif self.protocol.requires_listening:
            self.listening_slots += 1
        return decision

    def observe(self, observation, global_round: int) -> None:
        """Deliver feedback; record first success and switch-off times."""
        if not self.active:
            return
        if observation.acked and self.first_success_round is None:
            self.first_success_round = global_round
        self.protocol.observe(observation)
        if self.protocol.finished and self.switch_off_round is None:
            self.switch_off_round = global_round

    def record(self) -> StationRecord:
        return StationRecord(
            station_id=self.station_id,
            wake_round=self.wake_round,
            first_success_round=self.first_success_round,
            switch_off_round=self.switch_off_round,
            transmissions=self.transmissions,
            listening_slots=self.listening_slots,
        )


class QueuedStation:
    """One station owning a FIFO packet queue (dynamic-arrival traffic).

    Under the ``fifo`` discipline a station transmits only on behalf of its
    *head-of-line* packet: the head runs a fresh protocol instance (the
    packet is the anonymous contender of the base model; the station is its
    serialisation point), starting its local clock when it reaches the
    head.  Trailing packets wait, touching neither the channel nor any
    RNG.  The head leaves the queue when its protocol switches off —
    delivered (ack) or abandoned (e.g. its schedule horizon ran out) — and
    the next packet is promoted the same round.

    Per-packet records keep ``wake_round`` = the packet's *arrival* round,
    so queueing delay counts toward latency and backlog, matching the
    free-discipline (reduction) view of the same traffic.
    """

    __slots__ = ("station_id", "_factory", "_rng_source", "_waiting", "head",
                 "_head_arrival", "_head_packet")

    def __init__(
        self,
        station_id: int,
        protocol_factory: Callable[[], Protocol],
        rng_source: Callable[[], np.random.Generator],
    ):
        self.station_id = station_id
        self._factory = protocol_factory
        self._rng_source = rng_source
        self._waiting: deque[tuple[int, int]] = deque()
        self.head: Optional[Station] = None
        self._head_arrival: Optional[int] = None
        self._head_packet: Optional[int] = None

    @property
    def backlog(self) -> int:
        """Packets at this station not yet resolved (head included)."""
        return len(self._waiting) + (1 if self.head is not None else 0)

    def enqueue(self, packet_id: int, arrival_round: int) -> None:
        """A packet arrives (and becomes head immediately if none is live)."""
        self._waiting.append((packet_id, arrival_round))
        if self.head is None:
            self._promote(arrival_round)

    def _promote(self, at_round: int) -> None:
        if not self._waiting:
            return
        packet_id, arrival = self._waiting.popleft()
        # The head Station's wake_round is the promotion round: its
        # protocol may first transmit the round after reaching the head.
        self.head = Station(
            station_id=packet_id,
            wake_round=at_round,
            protocol=self._factory(),
            rng=self._rng_source(),
        )
        self._head_packet = packet_id
        self._head_arrival = arrival

    def _head_record(self) -> StationRecord:
        assert self.head is not None
        return StationRecord(
            station_id=self._head_packet,  # type: ignore[arg-type]
            wake_round=self._head_arrival,  # type: ignore[arg-type]
            first_success_round=self.head.first_success_round,
            switch_off_round=self.head.switch_off_round,
            transmissions=self.head.transmissions,
            listening_slots=self.head.listening_slots,
        )

    def finish_head_if_done(self, at_round: int) -> Optional[StationRecord]:
        """Pop a switched-off head: return its record, promote the next."""
        if self.head is None or self.head.active:
            return None
        record = self._head_record()
        self.head = None
        self._promote(at_round)
        return record

    def drain(self) -> list[StationRecord]:
        """Records for everything unresolved at the end of the horizon:
        the live head (state as-is) and the still-waiting packets."""
        records = []
        if self.head is not None:
            records.append(self._head_record())
            self.head = None
        for packet_id, arrival in self._waiting:
            records.append(
                StationRecord(
                    station_id=packet_id,
                    wake_round=arrival,
                    first_success_round=None,
                    switch_off_round=None,
                    transmissions=0,
                    listening_slots=0,
                )
            )
        self._waiting.clear()
        return records
