"""Station runtime state.

A :class:`Station` wraps one :class:`~repro.core.protocol.Protocol` instance
with the bookkeeping the simulator and the metrics layer need: wake time,
local clock, transmission count, first-success round.  The paper's stations
are anonymous — ``station_id`` exists only for bookkeeping and is never made
available to protocol *logic* beyond tagging the data packet's origin.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.protocol import Protocol, Transmission

__all__ = ["Station", "StationRecord"]


@dataclass(slots=True)
class StationRecord:
    """Immutable-after-run summary of one station's execution.

    ``listening_slots`` counts rounds the station spent *receiving* — the
    channel-access cost the paper's Discussion section singles out as an
    open problem for adaptive protocols.  Non-adaptive protocols do not
    need to listen at all (their only feedback is the ack, which arrives
    on the transmit path), so their count is 0 by definition.
    """

    station_id: int
    wake_round: int
    first_success_round: Optional[int]
    switch_off_round: Optional[int]
    transmissions: int
    listening_slots: int = 0

    @property
    def succeeded(self) -> bool:
        return self.first_success_round is not None

    @property
    def latency(self) -> Optional[int]:
        """Rounds from activation to own first success (paper's latency)."""
        if self.first_success_round is None:
            return None
        return self.first_success_round - self.wake_round


class Station:
    """Live station driven by the object engine."""

    __slots__ = (
        "station_id",
        "wake_round",
        "protocol",
        "transmissions",
        "listening_slots",
        "first_success_round",
        "switch_off_round",
    )

    def __init__(
        self,
        station_id: int,
        wake_round: int,
        protocol: Protocol,
        rng: np.random.Generator,
    ):
        self.station_id = station_id
        self.wake_round = wake_round
        self.protocol = protocol
        self.transmissions = 0
        self.listening_slots = 0
        self.first_success_round: Optional[int] = None
        self.switch_off_round: Optional[int] = None
        protocol.begin(station_id, rng)
        protocol.on_wake_round(wake_round)

    def local_round(self, global_round: int) -> int:
        """Local-clock round corresponding to reference-clock ``global_round``."""
        return global_round - self.wake_round

    @property
    def active(self) -> bool:
        """Active = woken and not yet switched off."""
        return self.switch_off_round is None

    def decide(self, global_round: int) -> Optional[Transmission]:
        """Ask the protocol for this round's action; track switch-off."""
        if not self.active:
            return None
        decision = self.protocol.decide(self.local_round(global_round))
        if self.protocol.finished and self.switch_off_round is None:
            # Protocol ended (e.g. schedule horizon ran out) during decide().
            self.switch_off_round = global_round
            return None
        if decision is not None:
            self.transmissions += 1
        elif self.protocol.requires_listening:
            self.listening_slots += 1
        return decision

    def observe(self, observation, global_round: int) -> None:
        """Deliver feedback; record first success and switch-off times."""
        if not self.active:
            return
        if observation.acked and self.first_success_round is None:
            self.first_success_round = global_round
        self.protocol.observe(observation)
        if self.protocol.finished and self.switch_off_round is None:
            self.switch_off_round = global_round

    def record(self) -> StationRecord:
        return StationRecord(
            station_id=self.station_id,
            wake_round=self.wake_round,
            first_success_round=self.first_success_round,
            switch_off_round=self.switch_off_round,
            transmissions=self.transmissions,
            listening_slots=self.listening_slots,
        )
