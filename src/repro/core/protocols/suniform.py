"""``SUniform`` — sawtooth back-off for *static* (synchronized) contention.

The paper uses, as a black box, any protocol resolving contention among
``k`` *simultaneously started* stations in ``O(k)`` rounds whp with
``O(log^2 T)`` transmissions per station (Theorem 5.2, quoting
Gereb-Graus and Tsantilas [sawtooth1]; also [sawtooth2], [AMM13]).  The
classical realisation is the **sawtooth (Back-on/Back-off) strategy**:

* an outer loop doubles a contention window ``T = 1, 2, 4, 8, ...``
  ("guessing" the contention size);
* for each outer ``T``, an inner loop sweeps window sizes
  ``T, T/2, T/4, ..., 1`` — as successful stations drop out, the shrinking
  window keeps the transmission density near the optimum;
* in each window of size ``W`` the station picks one slot uniformly at
  random and transmits only in that slot.

Once the outer window reaches ``Theta(k)``, each inner sweep halves the
survivors with constant probability per window, so everything finishes
within ``O(k)`` rounds whp; a station transmits once per window and there
are ``O(log^2 T)`` windows.

``AdaptiveNoK`` runs this protocol on the odd rounds of its dissemination
mode; it is also exposed standalone for the Theorem 5.2 benchmarks.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.channel.feedback import Observation
from repro.channel.messages import DataPacket
from repro.core.protocol import Protocol, Transmission

__all__ = ["SawtoothState", "SUniform"]


class SawtoothState:
    """The sawtooth window iterator, decoupled from channel mechanics.

    ``step()`` consumes one virtual round and reports whether the station
    transmits in it.  ``AdaptiveNoK`` feeds it only the odd dissemination
    rounds; the standalone :class:`SUniform` feeds it every round.
    """

    __slots__ = ("_rng", "outer", "window", "position", "slot", "rounds_consumed")

    def __init__(self, rng: np.random.Generator):
        self._rng = rng
        self.outer = 1  # current outer window size T
        self.window = 1  # current inner window size W
        self.position = 0  # 0-based position inside the current window
        self.slot = 0  # chosen transmission slot in the current window
        self.rounds_consumed = 0
        self._choose_slot()

    def _choose_slot(self) -> None:
        self.slot = int(self._rng.integers(0, self.window))

    def _advance_window(self) -> None:
        self.position = 0
        if self.window > 1:
            self.window //= 2
        else:
            self.outer *= 2
            self.window = self.outer
        self._choose_slot()

    def step(self) -> bool:
        """Consume one virtual round; return True iff transmitting in it."""
        transmit = self.position == self.slot
        self.position += 1
        self.rounds_consumed += 1
        if self.position >= self.window:
            self._advance_window()
        return transmit

    @staticmethod
    def rounds_until_outer(target: int) -> int:
        """Virtual rounds consumed before the outer window first reaches
        ``target`` (a power of two): ``sum_{T=1,2,4..<target} (2T - 1)``.

        Useful for horizon estimates: contention ``k`` is typically resolved
        while ``outer`` is ``Theta(k)``, i.e. within ``O(k)`` rounds.
        """
        if target < 1:
            raise ValueError(f"target must be >= 1, got {target}")
        rounds = 0
        size = 1
        while size < target:
            rounds += 2 * size - 1
            size *= 2
        return rounds


class SUniform(Protocol):
    """Standalone sawtooth back-off protocol (switches off on own ack).

    Matches the black-box contract of Theorem 5.2 when all stations start
    simultaneously; under asynchronous starts it has no guarantees (that
    gap is exactly why the paper wraps it in ``AdaptiveNoK``).
    """

    def __init__(self) -> None:
        super().__init__()
        self._state: Optional[SawtoothState] = None

    def begin(self, station_id: int, rng: np.random.Generator) -> None:
        super().begin(station_id, rng)
        self._state = SawtoothState(rng)

    def decide(self, local_round: int) -> Optional[Transmission]:
        assert self._state is not None
        if self._state.step():
            return Transmission(DataPacket(origin=self.station_id))
        return None

    def observe(self, observation: Observation) -> None:
        if observation.acked:
            self.switch_off()
