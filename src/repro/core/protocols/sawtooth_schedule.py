"""``SawtoothSchedule`` — the sawtooth back-off as a non-adaptive schedule.

:class:`~repro.core.protocols.suniform.SUniform` implements the sawtooth as
a stateful protocol on the object engine.  But the sawtooth is in fact a
*non-adaptive* algorithm in the paper's general sense: each station commits
in advance to a random set of transmission rounds — one uniform slot per
window — and only the switch-off reacts to the channel.  Its per-round
transmissions are **dependent** (exactly one per window), which is exactly
the generality the paper's Section 2.1 footnote grants ("we do not assume
independence of these probabilities across rounds") and its lower bound
covers.

This class expresses that view: marginal probabilities ``p(i) = 1/W(i)``
(``W(i)`` = size of the window containing local round ``i``) for the
sigma-trace machinery, plus a direct :meth:`sample_rounds` sampler so the
vectorised engine can run sawtooth sweeps at scales the object engine
cannot touch.  ``tests/test_sawtooth_schedule.py`` cross-validates it
against ``SUniform``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.protocol import ProbabilitySchedule

__all__ = ["SawtoothSchedule"]


def _window_sizes(max_total: int) -> list[int]:
    """The sawtooth window sequence (1; 2,1; 4,2,1; ...) covering at least
    ``max_total`` rounds."""
    sizes: list[int] = []
    covered = 0
    outer = 1
    while covered < max_total:
        w = outer
        while w >= 1:
            sizes.append(w)
            covered += w
            if covered >= max_total:
                break
            w //= 2
        outer *= 2
    return sizes


class SawtoothSchedule(ProbabilitySchedule):
    """Non-adaptive sawtooth: one uniform transmission slot per window."""

    def __init__(self) -> None:
        self.name = "SawtoothSchedule"
        self._sizes: list[int] = []
        self._starts = np.empty(0, dtype=np.int64)  # 1-based window starts
        self._ends = np.empty(0, dtype=np.int64)  # inclusive 1-based ends

    def _extend(self, max_total: int) -> None:
        if self._ends.size and self._ends[-1] >= max_total:
            return
        self._sizes = _window_sizes(max_total)
        ends = np.cumsum(np.asarray(self._sizes, dtype=np.int64))
        starts = ends - np.asarray(self._sizes, dtype=np.int64) + 1
        self._starts, self._ends = starts, ends

    def _window_index(self, local_round: int) -> int:
        self._extend(local_round)
        return int(np.searchsorted(self._ends, local_round, side="left"))

    def probability(self, local_round: int) -> float:
        """Marginal transmission probability: ``1 / window size``."""
        if local_round < 1:
            raise ValueError(f"local_round must be >= 1, got {local_round}")
        index = self._window_index(local_round)  # may rebind self._sizes
        return 1.0 / self._sizes[index]

    def probabilities(self, up_to: int) -> np.ndarray:
        if up_to < 0:
            raise ValueError(f"up_to must be non-negative, got {up_to}")
        if up_to == 0:
            return np.empty(0, dtype=float)
        self._extend(up_to)
        return np.repeat(
            1.0 / np.asarray(self._sizes, dtype=float),
            np.asarray(self._sizes, dtype=np.int64),
        )[:up_to]

    def horizon(self) -> None:
        return None

    def sample_rounds(
        self, rng: np.random.Generator, max_local: int
    ) -> Optional[np.ndarray]:
        """One uniform slot per window intersecting ``[1, max_local]``."""
        if max_local < 1:
            return np.empty(0, dtype=np.int64)
        self._extend(max_local)
        keep = self._starts <= max_local
        starts = self._starts[keep]
        widths = (self._ends[keep] - starts + 1).astype(np.int64)
        # Draw within the *full* window (preserving the exact 1/W marginal)
        # and drop draws landing past the horizon.
        offsets = (rng.random(len(starts)) * widths).astype(np.int64)
        rounds = starts + np.minimum(offsets, widths - 1)
        return rounds[rounds <= max_local]
