"""``AdaptiveNoK`` — Algorithm 3 of the paper (Section 5).

The adaptive protocol achieving ``O(k)`` latency whp with *no* knowledge of
the contention size and *no* collision detection (Theorem 5.3), with
``O(k log^2 k)`` expected total transmissions (Theorem 5.4).

The system alternates between two modes:

* **L mode (leader election)** — stations run ``DecreaseSlowly``; the first
  station to transmit alone becomes the *leader* (its own packet is thereby
  delivered).  All stations active at that round become the synchronized
  set ``C`` and share a virtual clock ``tc`` starting at 0.

* **D mode (dissemination)** — coordinated by the leader:

  - odd ``tc``: the members of ``C`` run the static sawtooth protocol
    ``SUniform`` (switching off at their own success);
  - even ``tc`` that is a *white round* (``tc = 2^x``): the leader and all
    still-alive members jointly transmit the one-bit probe
    ``<is there anybody out there?>``.  The probe succeeds iff the leader is
    alone — i.e. every member has finished — in which case the leader
    switches off and the D mode ends;
  - every other even ``tc`` (*black rounds*): the leader alone transmits the
    one-bit ``<D mode>`` announcement, telling newly woken stations to wait.

Newly woken stations listen in windows of 4 rounds (line 3 of the
pseudocode) and join a leader election only when a window contains either
no message at all or the probe message — both of which certify that no D
mode is currently running.

**White-round convention.**  The pseudocode writes ``tc = 2^x, x >= 1``,
which would make both ``tc = 2`` and ``tc = 4`` probe rounds and leave a
5-round prefix of the D mode with no ``<D mode>`` bit — newcomers waking
then would erroneously join an election mid-D-mode, contradicting the
paper's own claim that "two consecutive black rounds are at most 4 rounds
apart" and the prose that only "a power of 2 *larger than 2*" may be
skipped.  We therefore use ``x >= 2`` (white rounds 4, 8, 16, ...), which
makes every 4 consecutive rounds contain a black round, exactly as the
analysis in Theorem 5.3 requires.
"""

from __future__ import annotations

import enum
from typing import Optional

import numpy as np

from repro.channel.feedback import Observation
from repro.channel.messages import AnybodyOutThereProbe, DataPacket, DModeAnnouncement
from repro.core.protocol import Protocol, Transmission
from repro.core.protocols.suniform import SawtoothState
from repro.util.intmath import clamp_probability, is_power_of_two

__all__ = ["AdaptiveNoK", "Mode"]

#: Length of the listening window of the initial while loop (pseudocode line 3).
LISTEN_WINDOW = 4


class Mode(enum.Enum):
    """Which part of Algorithm 3 the station is currently executing."""

    WAITING = "waiting"  # initial while loop: listening in windows of 4
    ELECTION = "election"  # L mode: running DecreaseSlowly
    MEMBER = "member"  # D mode, synchronized non-leader (set C)
    LEADER = "leader"  # D mode, the elected leader


def is_white_round(tc: int) -> bool:
    """White rounds are ``tc = 2^x`` with ``x >= 2`` (see module docstring).

    >>> [tc for tc in range(1, 20) if is_white_round(tc)]
    [4, 8, 16]
    """
    return tc >= 4 and is_power_of_two(tc)


class AdaptiveNoK(Protocol):
    """One station's Algorithm 3 state machine.

    Args:
        q: the ``DecreaseSlowly`` constant used in L mode (> 0).
    """

    def __init__(self, q: float = 2.0):
        super().__init__()
        if q <= 0:
            raise ValueError(f"q must be > 0, got {q}")
        self.q = float(q)
        self.mode = Mode.WAITING
        # WAITING-window state.
        self._window_rounds = 0
        self._window_saw_message = False
        self._window_saw_probe = False
        # ELECTION state: DecreaseSlowly's i counter.
        self._election_i = 0
        # D-mode state.
        self._tc = 0
        self._sawtooth: Optional[SawtoothState] = None
        self._last_payload: Optional[object] = None

    def begin(self, station_id: int, rng: np.random.Generator) -> None:
        super().begin(station_id, rng)

    # ------------------------------------------------------------------ decide

    def decide(self, local_round: int) -> Optional[Transmission]:
        if self.mode is Mode.WAITING:
            self._last_payload = None
            return None
        if self.mode is Mode.ELECTION:
            return self._decide_election()
        # D mode: advance the shared virtual clock first; tc was 0 in the
        # election round, so the first dissemination round has tc == 1.
        self._tc += 1
        if self.mode is Mode.MEMBER:
            return self._decide_member()
        return self._decide_leader()

    def _decide_election(self) -> Optional[Transmission]:
        p = clamp_probability(self.q / (2.0 * self.q + self._election_i))
        self._election_i += 1
        if self.rng.random() < p:
            self._last_payload = DataPacket(origin=self.station_id)
            return Transmission(self._last_payload)
        self._last_payload = None
        return None

    def _decide_member(self) -> Optional[Transmission]:
        assert self._sawtooth is not None
        if self._tc % 2 == 1:
            # Odd tc: one virtual SUniform round.
            if self._sawtooth.step():
                self._last_payload = DataPacket(origin=self.station_id)
                return Transmission(self._last_payload)
            self._last_payload = None
            return None
        if is_white_round(self._tc):
            self._last_payload = AnybodyOutThereProbe()
            return Transmission(self._last_payload)
        self._last_payload = None
        return None  # black round: the leader is speaking

    def _decide_leader(self) -> Optional[Transmission]:
        if self._tc % 2 == 1:
            self._last_payload = None
            return None  # odd rounds belong to SUniform
        if is_white_round(self._tc):
            self._last_payload = AnybodyOutThereProbe()
        else:
            self._last_payload = DModeAnnouncement()
        return Transmission(self._last_payload)

    # ----------------------------------------------------------------- observe

    def observe(self, observation: Observation) -> None:
        if self.mode is Mode.WAITING:
            self._observe_waiting(observation)
        elif self.mode is Mode.ELECTION:
            self._observe_election(observation)
        elif self.mode is Mode.MEMBER:
            self._observe_member(observation)
        else:
            self._observe_leader(observation)

    def _observe_waiting(self, observation: Observation) -> None:
        self._window_rounds += 1
        if observation.message is not None:
            self._window_saw_message = True
            if isinstance(observation.message, AnybodyOutThereProbe):
                self._window_saw_probe = True
        if self._window_rounds < LISTEN_WINDOW:
            return
        # Pseudocode line 4: leave the loop iff the window contained no
        # message at all, or contained the end-of-D-mode probe.
        if not self._window_saw_message or self._window_saw_probe:
            self.mode = Mode.ELECTION
            self._election_i = 0
        self._window_rounds = 0
        self._window_saw_message = False
        self._window_saw_probe = False

    def _observe_election(self, observation: Observation) -> None:
        if observation.acked:
            # This station's packet went through alone: it is the leader.
            self.mode = Mode.LEADER
            self._tc = 0
            return
        message = observation.message
        if message is None:
            return
        if isinstance(message, DataPacket):
            # Someone else won the election; synchronize as a member of C.
            self.mode = Mode.MEMBER
            self._tc = 0
            self._sawtooth = SawtoothState(self.rng)
        else:
            # Defensive: a control message means a D mode is running after
            # all (cannot happen under the x >= 2 white-round convention,
            # but a custom adversary could contrive it); re-enter the
            # waiting loop rather than disrupt the dissemination.
            self.mode = Mode.WAITING
            self._window_rounds = 0
            self._window_saw_message = False
            self._window_saw_probe = False

    def _observe_member(self, observation: Observation) -> None:
        if observation.acked and isinstance(self._last_payload, DataPacket):
            # Pseudocode line 14: switch off at the first successful
            # transmission of the station's own packet.
            self.switch_off()
            return
        message = observation.message
        if (
            self._tc % 2 == 1
            and message is not None
            and not isinstance(message, DataPacket)
        ):
            # Clock-desync resolution (companion to the leader's duplicate
            # detection): odd rounds of a clean dissemination mode carry only
            # data, so a control bit heard on this member's odd round proves
            # its tc is out of phase with the live leader — its sawtooth
            # slots would collide with that leader's control bits forever.
            # Re-enter the waiting loop and rejoin after this D mode ends.
            self.mode = Mode.WAITING
            self._window_rounds = 0
            self._window_saw_message = False
            self._window_saw_probe = False
            self._sawtooth = None

    def _observe_leader(self, observation: Observation) -> None:
        if observation.acked and isinstance(self._last_payload, AnybodyOutThereProbe):
            # Pseudocode line 17: probe acked => no member left; the
            # dissemination mode terminates and the leader switches off.
            self.switch_off()
            return
        message = observation.message
        if message is not None and not isinstance(message, DataPacket):
            # Duplicate-leader resolution (a deviation the pseudocode needs):
            # in a single-leader execution the leader is the *only* sender of
            # control bits, so receiving one proves a second leader exists —
            # possible when a waiter's 4-round window straddles the previous
            # D mode's final probe and the next election, joins that election
            # mid-D-mode, and wins a slot on the opposite round parity.  Two
            # such leaders alternate successful control bits forever and
            # deadlock the system.  They necessarily sit on opposite
            # parities (a win is impossible on a parity a leader occupies),
            # so each hears the other; this leader's own packet was already
            # delivered at its election, and ceding breaks the livelock.
            self.switch_off()
