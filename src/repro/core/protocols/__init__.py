"""The paper's protocols: Algorithms 1-4, the SUniform black box, and the
Discussion-section extensions (global clock, wake-up variants)."""

from repro.core.protocols.adaptive_no_k import AdaptiveNoK, Mode
from repro.core.protocols.decrease_slowly import DecreaseSlowly
from repro.core.protocols.global_clock import GlobalClockBeacon, GlobalClockUFR
from repro.core.protocols.non_adaptive_with_k import NonAdaptiveWithK
from repro.core.protocols.sawtooth_schedule import SawtoothSchedule
from repro.core.protocols.sublinear_decrease import SublinearDecrease
from repro.core.protocols.suniform import SawtoothState, SUniform
from repro.core.protocols.wakeup_variants import (
    FixedRateWakeup,
    GeometricDecayWakeup,
)

__all__ = [
    "AdaptiveNoK",
    "Mode",
    "DecreaseSlowly",
    "GlobalClockBeacon",
    "GlobalClockUFR",
    "NonAdaptiveWithK",
    "SawtoothSchedule",
    "SublinearDecrease",
    "SawtoothState",
    "SUniform",
    "FixedRateWakeup",
    "GeometricDecayWakeup",
]
