"""``NonAdaptiveWithK(k, c)`` — Algorithm 1 of the paper (Section 3).

A non-adaptive protocol for *known* contention size ``k`` (or a linear upper
bound).  The station climbs a ladder of ``loglog k + 1`` probability levels:

    for l = 0, 1, ..., loglog k:
        for c * phi(l) rounds: transmit with probability 2^l / (2k)

where ``phi(l) = k / 2^l`` for ``l < loglog k`` and ``phi(loglog k) = k``.
Probabilities start at ``1/(2k)`` and end at ``log k / (2k)``; the total
schedule length is under ``3ck`` rounds (Fact 3.1), giving the O(k) latency
of Theorem 3.1 and the O(k log k) energy of Theorem 3.2.

The slow doubling is the point: it guarantees that no matter how the
adversary staggers wake-ups, in every round the *sum* of active stations'
probabilities stays below 1 whp (Lemma 3.6), while each individual station
ends up transmitting with probability ``Theta(log k / k)`` for ``Theta(k)``
rounds — enough to succeed whp.
"""

from __future__ import annotations

import numpy as np

from repro.core.protocol import ProbabilitySchedule
from repro.util.intmath import ceil_log2, clamp_probability, loglog2

__all__ = ["NonAdaptiveWithK"]


class NonAdaptiveWithK(ProbabilitySchedule):
    """The Algorithm 1 probability ladder for known contention size ``k``.

    Args:
        k: the (known) number of contenders, or a linear upper bound.
        c: the repetition constant; the success probability ``1 - k^-eta``
            grows with ``c`` (Theorem 3.1 quantifies "for sufficiently
            large c").  Defaults to 6, which empirically gives >99% success
            across the benchmark sweeps.
    """

    def __init__(self, k: int, c: int = 6):
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if c < 1:
            raise ValueError(f"c must be >= 1, got {c}")
        self.k = k
        self.c = c
        self.name = f"NonAdaptiveWithK(k={k},c={c})"
        self._levels = loglog2(k)  # outer loop runs l = 0 .. _levels
        # Phase lengths c*phi(l) and per-phase probabilities, precomputed.
        self._phase_lengths: list[int] = []
        self._phase_probabilities: list[float] = []
        for level in range(self._levels + 1):
            self._phase_lengths.append(self.c * self.phi(level))
            self._phase_probabilities.append(
                clamp_probability((2.0**level) / (2.0 * k))
            )
        self._boundaries = np.cumsum(self._phase_lengths)

    def phi(self, level: int) -> int:
        """The paper's ``phi(l)``: ``k/2^l`` (rounded up) below the last
        level, ``k`` at the last level."""
        if not 0 <= level <= self._levels:
            raise ValueError(f"level must be in [0, {self._levels}], got {level}")
        if level == self._levels:
            return self.k
        return max(1, -(-self.k // (2**level)))  # ceil division

    def horizon(self) -> int:
        """Total schedule length; Fact 3.1 bounds it by ``3ck``."""
        return int(self._boundaries[-1])

    def level_of(self, local_round: int) -> int:
        """Which ladder level ``l`` local round ``i`` (1-based) belongs to."""
        if local_round < 1:
            raise ValueError(f"local_round must be >= 1, got {local_round}")
        if local_round > self.horizon():
            raise ValueError(f"local_round {local_round} beyond horizon {self.horizon()}")
        return int(np.searchsorted(self._boundaries, local_round, side="left"))

    def probability(self, local_round: int) -> float:
        if local_round > self.horizon():
            return 0.0
        return self._phase_probabilities[self.level_of(local_round)]

    def probabilities(self, up_to: int) -> np.ndarray:
        """Vectorised schedule table (overrides the generic Python loop)."""
        if up_to < 0:
            raise ValueError(f"up_to must be non-negative, got {up_to}")
        ladder = np.repeat(self._phase_probabilities, self._phase_lengths)
        if up_to <= len(ladder):
            return ladder[:up_to].astype(float)
        return np.concatenate([ladder, np.zeros(up_to - len(ladder))]).astype(float)

    @property
    def final_probability(self) -> float:
        """The last level's probability, ``~log2(k) / (2k)``."""
        return self._phase_probabilities[-1]

    def theoretical_latency_bound(self) -> int:
        """Fact 3.1's ``3ck`` latency ceiling."""
        return 3 * self.c * self.k

    @staticmethod
    def expected_energy_per_station(k: int, c: int = 6) -> float:
        """Theorem 3.2's per-station expectation: ``c/2`` per non-final
        level plus ``(c/2) log k`` at the final level."""
        levels = loglog2(k)
        return c / 2.0 * levels + c / 2.0 * max(1, ceil_log2(max(2, k)))
