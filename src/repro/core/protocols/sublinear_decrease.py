"""``SublinearDecrease(b)`` — Algorithm 2 of the paper (Section 4.3).

A non-adaptive *universal* protocol: no knowledge of the contention size.
The probability ladder decreases sub-linearly,

    for j = 3, 4, 5, ...:
        for b rounds: transmit with probability ln(j) / j

Latency (Theorems 4.?/4.?, here Theorem ``t:full-1``/``t:full-2``):

* without acknowledgements (stations never switch off): ``O(k ln^2 k)`` whp;
* with acknowledgements (switch off on own success):
  ``O(k ln^2 k / lnln k)`` whp.

Energy: ``O(k log^2 k)`` total broadcast attempts whp (Theorem
``thm:energy-non-adaptive-unknown``).  Both variants work against an
adaptive adversary.  By the paper's lower bound (Theorem ``t:lower-gen``)
no non-adaptive ``k``-oblivious protocol can do better than
``Omega(k log k / (loglog k)^2)``, so this ladder is within an
``O(log k loglog k)`` factor of optimal.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.protocol import ProbabilitySchedule
from repro.util.intmath import clamp_probability

__all__ = ["SublinearDecrease"]


class SublinearDecrease(ProbabilitySchedule):
    """The Algorithm 2 ladder: ``ln j / j`` held for ``b`` rounds each.

    Args:
        b: segment length; the success probability grows with ``b``
            (Theorem quantifies "for sufficiently large b").  Defaults to 4.
    """

    def __init__(self, b: int = 4):
        if b < 1:
            raise ValueError(f"b must be >= 1, got {b}")
        self.b = b
        self.name = f"SublinearDecrease(b={b})"

    def segment_of(self, local_round: int) -> int:
        """The ladder index ``j`` (>= 3) that local round ``i`` falls in."""
        if local_round < 1:
            raise ValueError(f"local_round must be >= 1, got {local_round}")
        return 3 + (local_round - 1) // self.b

    def probability(self, local_round: int) -> float:
        j = self.segment_of(local_round)
        return clamp_probability(math.log(j) / j)

    def horizon(self) -> None:
        """The ladder never ends; runs are bounded by the engine horizon."""
        return None

    def probabilities(self, up_to: int) -> np.ndarray:
        """Vectorised schedule table (overrides the generic Python loop)."""
        if up_to < 0:
            raise ValueError(f"up_to must be non-negative, got {up_to}")
        if up_to == 0:
            return np.empty(0, dtype=float)
        j = 3 + np.arange(up_to, dtype=np.int64) // self.b
        return np.minimum(1.0, np.log(j) / j)

    def cumulative_bound(self, local_round: int) -> float:
        """Fact 4.1's upper bound ``s(i) < b ln^2(i/b)``.

        The paper states the bound "for a sufficiently large i"; numerically
        the exact crossover is ``i ~ 2.6 b`` (mid-segment points just above
        ``2b`` exceed the envelope slightly), so we require ``i >= 3b``,
        above which the inequality holds for every round.
        """
        if local_round < 3 * self.b:
            raise ValueError("the Fact 4.1 bound needs i >= 3b")
        return self.b * math.log(local_round / self.b) ** 2

    @staticmethod
    def latency_bound_no_ack(k: int, b: int) -> int:
        """Theorem ``t:full-1`` horizon: ``b * r`` with ``r = 4 k ln^2 k``."""
        if k < 2:
            return 16 * b
        return int(math.ceil(b * 4.0 * k * math.log(k) ** 2))

    @staticmethod
    def latency_bound_with_ack(k: int, b: int) -> int:
        """Theorem ``t:full-2`` horizon: ``b * r`` with
        ``r = 2 k ln^2 k / (b1 lnln k)`` (we take the paper's constant
        ``b1 = 1`` for reporting; the shape is what matters)."""
        if k < 16:
            return SublinearDecrease.latency_bound_no_ack(k, b)
        return int(math.ceil(b * 2.0 * k * math.log(k) ** 2 / math.log(math.log(k))))
