"""``GlobalClockUFR`` — the Discussion section's global-clock sketch.

The paper's closing discussion asks whether a global clock helps, and
sketches an O(k)-latency solution for the model where (a) a global clock
is available and (b) *all* stations receive acknowledgements of all
transmissions:

    "Wakeup is performed in odd rounds and in even rounds all stations
    transmit with the probability from the last successful wakeup round.
    Every station switches off after transmitting its message
    successfully.  This approach should assure maintaining optimal
    transmission probabilities of stations for a constant fraction of
    active time."

This module implements that sketch as a model *extension* (it deliberately
uses two capabilities the paper's base model denies: global time via
:meth:`~repro.core.protocol.Protocol.on_wake_round`, and learning from
others' successes via the beacon's payload):

* odd global rounds run the ``DecreaseSlowly`` wake-up schedule; a wake-up
  transmission is a *beacon* carrying both the station's data packet and
  the probability it used;
* on hearing a beacon, every station adopts the announced probability as
  its data-round probability (the "last successful wakeup round" rule);
* even global rounds transmit the data packet with the adopted
  probability; a station switches off when its own packet goes through
  (either as a beacon or in a data round).

The wake-up success happens at probability ~1/(number of contenders), so
the adopted probability tracks the live contention — the load-estimation
trick the conjecture relies on.  The ``global_clock`` experiment checks
the conjectured O(k) latency empirically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.channel.feedback import Observation
from repro.channel.messages import DataPacket
from repro.core.protocol import Protocol, Transmission
from repro.util.intmath import clamp_probability

__all__ = ["GlobalClockBeacon", "GlobalClockUFR"]


@dataclass(frozen=True, slots=True)
class GlobalClockBeacon:
    """A wake-up transmission: the packet plus the probability used.

    Appending O(log) bits of control information to a packet is the same
    relaxation the paper cites for adaptive settings ([ICPADS20], [AMM13]).
    """

    payload: DataPacket
    probability: float


class GlobalClockUFR(Protocol):
    """The Discussion sketch: wake-up on odd global rounds, load-matched
    data transmissions on even global rounds.

    Args:
        q: the ``DecreaseSlowly`` constant for the odd-round wake-up.
    """

    def __init__(self, q: float = 2.0):
        super().__init__()
        if q <= 0:
            raise ValueError(f"q must be > 0, got {q}")
        self.q = float(q)
        self._wake_round: Optional[int] = None
        self._wakeup_i = 0  # DecreaseSlowly counter over odd rounds
        self._data_probability: Optional[float] = None
        self._last_payload: Optional[object] = None

    def on_wake_round(self, wake_round: int) -> None:
        self._wake_round = wake_round

    def _global_round(self, local_round: int) -> int:
        if self._wake_round is None:
            raise RuntimeError(
                "GlobalClockUFR needs the global clock: run it on the object "
                "engine, which delivers wake rounds via on_wake_round()"
            )
        return self._wake_round + local_round

    def decide(self, local_round: int) -> Optional[Transmission]:
        global_round = self._global_round(local_round)
        if global_round % 2 == 1:
            # Odd: one step of the DecreaseSlowly wake-up, as a beacon.
            p = clamp_probability(self.q / (2.0 * self.q + self._wakeup_i))
            self._wakeup_i += 1
            if self.rng.random() < p:
                self._last_payload = GlobalClockBeacon(
                    payload=DataPacket(origin=self.station_id), probability=p
                )
                return Transmission(self._last_payload)
            self._last_payload = None
            return None
        # Even: data round at the adopted probability (silent until the
        # first beacon has been heard or sent).
        p = self._data_probability
        if p is not None and self.rng.random() < p:
            self._last_payload = DataPacket(origin=self.station_id)
            return Transmission(self._last_payload)
        self._last_payload = None
        return None

    def observe(self, observation: Observation) -> None:
        if observation.acked:
            # Own success: beacon or data round — either way the packet is
            # delivered (the beacon carries it); adopt own probability
            # first so the metrics of the final round stay consistent.
            self.switch_off()
            return
        message = observation.message
        if isinstance(message, GlobalClockBeacon):
            # The "last successful wakeup round" rule: adopt the winner's
            # probability as the data-round probability.
            self._data_probability = clamp_probability(message.probability)
