"""Wake-up schedule variants: why ``DecreaseSlowly``'s harmonic decay wins.

The wake-up problem (achieve *one* successful transmission) is the inner
engine of ``AdaptiveNoK``'s leader election.  The paper uses [JS05]'s
harmonic schedule; these comparison schedules make the design space
visible:

* :class:`FixedRateWakeup` — transmit forever with constant ``p``.  Optimal
  when ``p ~ 1/k``, but requires knowing ``k``, and a fixed ``p`` is either
  too hot (many contenders -> permanent collisions) or too cold (lonely
  station waits ``1/p``).
* :class:`GeometricDecayWakeup` — ``p(i) = p0 * factor^(i-1)``.  Decays to
  the right level *fast*, but the cumulative probability is finite
  (``sum p(i) = p0/(1-factor)``), so a station that never got lucky early
  effectively goes silent: against staggered wake-ups it can fail outright.
* ``DecreaseSlowly`` — ``q/(2q+i)``: decays slowly enough that the
  cumulative sum diverges (every station stays persistent: it never goes
  silent) yet fast enough that a late crowd's combined rate stays bounded.
  This divergent-sum-with-vanishing-rate combination is exactly what the
  asynchronous setting requires, and the ``wakeup_variants`` experiment
  shows both alternatives failing where it succeeds.
"""

from __future__ import annotations

import numpy as np

from repro.core.protocol import ProbabilitySchedule
from repro.util.intmath import clamp_probability

__all__ = ["FixedRateWakeup", "GeometricDecayWakeup"]


class FixedRateWakeup(ProbabilitySchedule):
    """Constant transmission probability ``p`` every round."""

    def __init__(self, p: float):
        if not 0.0 < p <= 1.0:
            raise ValueError(f"p must be in (0, 1], got {p}")
        self.p = float(p)
        self.name = f"FixedRateWakeup(p={p})"

    def probability(self, local_round: int) -> float:
        if local_round < 1:
            raise ValueError(f"local_round must be >= 1, got {local_round}")
        return self.p

    def probabilities(self, up_to: int) -> np.ndarray:
        if up_to < 0:
            raise ValueError(f"up_to must be non-negative, got {up_to}")
        return np.full(up_to, self.p, dtype=float)


class GeometricDecayWakeup(ProbabilitySchedule):
    """``p(i) = p0 * factor^(i-1)`` — decays too fast to stay persistent.

    The cumulative transmission probability converges to
    ``p0 / (1 - factor)``, so by Borel-Cantelli a station's total expected
    number of transmissions is finite: if its early attempts collide (e.g.
    it woke inside a crowd), it may *never* transmit again — the failure
    mode the harmonic schedule is designed to avoid.
    """

    def __init__(self, p0: float = 0.5, factor: float = 0.9):
        if not 0.0 < p0 <= 1.0:
            raise ValueError(f"p0 must be in (0, 1], got {p0}")
        if not 0.0 < factor < 1.0:
            raise ValueError(f"factor must be in (0, 1), got {factor}")
        self.p0 = float(p0)
        self.factor = float(factor)
        self.name = f"GeometricDecayWakeup(p0={p0},factor={factor})"

    def probability(self, local_round: int) -> float:
        if local_round < 1:
            raise ValueError(f"local_round must be >= 1, got {local_round}")
        return clamp_probability(self.p0 * self.factor ** (local_round - 1))

    def probabilities(self, up_to: int) -> np.ndarray:
        if up_to < 0:
            raise ValueError(f"up_to must be non-negative, got {up_to}")
        if up_to == 0:
            return np.empty(0, dtype=float)
        exponents = np.arange(up_to, dtype=float)
        return np.minimum(1.0, self.p0 * self.factor**exponents)

    def total_mass(self) -> float:
        """The convergent cumulative sum ``p0 / (1 - factor)``."""
        return self.p0 / (1.0 - self.factor)
