"""``DecreaseSlowly(q)`` — Algorithm 4 of the paper (wake-up / leader election).

Introduced by Jurdzinski and Stachowiak [JS05]; the paper improves its
analysis to show the *wake-up problem* (achieving the first successful
transmission) completes in ``O(k)`` rounds whp, even against an adaptive
adversary (Theorem 5.1).  Each station, from its activation, transmits with
probability

    q / (2q + i)        in the i-th round of its local clock (i = 0, 1, ...)

so the probability decays harmonically from 1/2.  ``AdaptiveNoK`` uses it as
the leader-election mode: the first station to transmit alone becomes the
leader.
"""

from __future__ import annotations

import numpy as np

from repro.core.protocol import ProbabilitySchedule
from repro.util.intmath import clamp_probability

__all__ = ["DecreaseSlowly"]


class DecreaseSlowly(ProbabilitySchedule):
    """The harmonic-decay wake-up schedule ``q / (2q + i)``.

    Our local rounds are 1-based (first possible transmission at local round
    1), mapping to the paper's ``i = local_round - 1``; so
    ``p(1) = q/(2q) = 1/2`` for every ``q``.

    Args:
        q: the decay constant (> 0).  Larger ``q`` keeps probabilities high
            for longer, improving the success exponent at the cost of more
            collisions early on.  Defaults to 2.
    """

    def __init__(self, q: float = 2.0):
        if q <= 0:
            raise ValueError(f"q must be > 0, got {q}")
        self.q = float(q)
        self.name = f"DecreaseSlowly(q={q})"

    def probability(self, local_round: int) -> float:
        if local_round < 1:
            raise ValueError(f"local_round must be >= 1, got {local_round}")
        i = local_round - 1  # paper's round index
        return clamp_probability(self.q / (2.0 * self.q + i))

    def horizon(self) -> None:
        """Unbounded; the wake-up run stops at the first success."""
        return None

    def probabilities(self, up_to: int) -> np.ndarray:
        """Vectorised schedule table (overrides the generic Python loop)."""
        if up_to < 0:
            raise ValueError(f"up_to must be non-negative, got {up_to}")
        if up_to == 0:
            return np.empty(0, dtype=float)
        i = np.arange(up_to, dtype=float)
        return np.minimum(1.0, self.q / (2.0 * self.q + i))

    def theoretical_wakeup_bound(self, k: int) -> int:
        """Theorem 5.1's horizon: the proof works within ``32 q k`` rounds."""
        return int(32 * self.q * k)
