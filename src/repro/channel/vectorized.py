"""The vectorised engine: fast, exact simulation of non-adaptive schedules.

Non-adaptive protocols transmit in local round ``i`` with a probability
``p(i)`` that is a pure function of ``i`` and independent across rounds
(the uniform schedules of Sections 3 and 4).  Simulating round-by-round
costs O(rounds x stations); this engine instead samples each station's
*entire set of transmission rounds* directly, in expected O(s(H)) samples
per station (``s(H)`` = expected number of transmissions), then resolves
collisions with a single sweep over rounds that actually contain a
transmission.

Exactness.  Independent per-round Bernoulli(p_i) transmissions are
distributionally identical to "at least one point of a unit-rate Poisson
process falls into a step of width ``lambda_i = -ln(1 - p_i)``":
the step counts are independent Poisson(lambda_i), and
``P(count >= 1) = 1 - exp(-lambda_i) = p_i``.  So we draw
``M ~ Poisson(sum lambda_i)`` points uniform on the cumulative-hazard axis,
map them onto rounds with a binary search, and deduplicate.  No
approximation is involved (up to the 1e-15 hazard cap for p = 1 rounds,
which no paper protocol uses).

The engine reproduces exactly the statistics of
:class:`~repro.channel.simulator.SlotSimulator` running a
:class:`~repro.core.protocol.ScheduleProtocol`; a statistical
cross-validation test in ``tests/test_engine_agreement.py`` enforces this.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.adversary.base import WakeSchedule
from repro.channel.results import RunResult, StopCondition
from repro.core.protocol import ProbabilitySchedule
from repro.core.station import StationRecord
from repro.telemetry import registry as telemetry
from repro.util.rng import RngFactory

__all__ = [
    "VectorizedSimulator",
    "hazard_table",
    "check_prob_table",
    "dedup_station_events",
    "sample_station_events",
]

#: Hazard assigned to probability-1 rounds (P(miss) ~ 1e-15, i.e. never).
_MAX_HAZARD = 34.538776394910684


def hazard_table(probabilities: np.ndarray) -> np.ndarray:
    """Cumulative hazard ``Lambda[i] = sum_{j<=i} -ln(1 - p_j)``.

    Probability-1 rounds get the capped hazard ``_MAX_HAZARD``.
    """
    p = np.asarray(probabilities, dtype=float)
    if p.size and (p.min() < 0.0 or p.max() > 1.0):
        raise ValueError("probabilities must lie in [0, 1]")
    with np.errstate(divide="ignore"):
        lam = -np.log1p(-p)
    lam = np.where(np.isfinite(lam), lam, _MAX_HAZARD)
    return np.cumsum(lam)


def check_prob_table(
    schedule: ProbabilitySchedule, p: np.ndarray, max_local: int
) -> None:
    """Spot-check a supplied probability table against the live schedule.

    Guards the cache-passing API: a table built from a different schedule
    silently poisons every result, so a few entries are compared against
    the live schedule.  Probe indices are deduplicated: at ``max_local == 1``
    the naive triple ``(1, max_local // 2 or 1, max_local)`` would check
    round 1 three times and sample nothing else.
    """
    horizon = schedule.horizon()
    for i in sorted({1, max_local // 2 or 1, max_local}):
        if horizon is not None and i > horizon:
            expected = 0.0
        else:
            expected = min(1.0, max(0.0, schedule.probability(i)))
        if abs(p[i - 1] - expected) > 1e-9:
            raise ValueError(
                f"prob_table disagrees with {schedule.name} at "
                f"local round {i}: table {p[i - 1]!r} vs schedule "
                f"{expected!r}"
            )


def dedup_station_events(
    stations: np.ndarray, rounds: np.ndarray, max_round: int
) -> tuple[np.ndarray, np.ndarray]:
    """Unique ``(station, round)`` pairs, sorted by station then round.

    One composite-key ``np.unique`` replaces the historical per-station
    ``np.unique`` loop; the output order (station-major, rounds ascending
    within a station) is identical.  ``max_round`` bounds the round values
    so the composite key is collision-free.
    """
    if rounds.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    stride = np.int64(max_round) + 1
    key = np.unique(stations.astype(np.int64) * stride + rounds)
    out_stations = key // stride
    return out_stations, key - out_stations * stride


def sample_station_events(
    rng: np.random.Generator,
    schedule: ProbabilitySchedule,
    k: int,
    cumulative_hazard: np.ndarray,
    max_local: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Sample the flat ``(stations, local_rounds)`` event stream for ``k``
    stations (ignoring switch-off, which is applied during the sweep).

    Schedules with dependent rounds provide their own sampler via
    :meth:`ProbabilitySchedule.sample_rounds`; independent-Bernoulli
    schedules go through the exact Poisson-thinning path.  Both the RNG
    draw order and the returned event order match the historical
    per-station loop exactly, so results are byte-identical per seed; the
    batched engine (:mod:`repro.channel.batched`) reuses this helper with
    one per-repetition generator each.
    """
    probe = schedule.sample_rounds(rng, max_local)
    if probe is not None:
        parts = [np.asarray(probe, dtype=np.int64)]
        for _ in range(k - 1):
            drawn = schedule.sample_rounds(rng, max_local)
            parts.append(np.asarray(drawn, dtype=np.int64))
        rounds = np.concatenate(parts)
        if rounds.size and (rounds.min() < 1 or rounds.max() > max_local):
            raise ValueError(
                f"{schedule.name}: sample_rounds produced local "
                f"rounds outside [1, {max_local}]"
            )
        lengths = np.fromiter((len(part) for part in parts), np.int64, count=k)
        stations = np.repeat(np.arange(k, dtype=np.int64), lengths)
        return dedup_station_events(stations, rounds, max_local)
    total = float(cumulative_hazard[-1]) if cumulative_hazard.size else 0.0
    if total <= 0.0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    counts = rng.poisson(total, size=k)
    flat = rng.uniform(0.0, total, size=int(counts.sum()))
    # A point at hazard position u lands in the round whose cumulative
    # hazard first reaches past u; +1 converts 0-based step to local
    # round (local rounds start at 1).
    rounds = np.searchsorted(cumulative_hazard, flat, side="right") + 1
    stations = np.repeat(np.arange(k, dtype=np.int64), counts)
    return dedup_station_events(stations, rounds.astype(np.int64), max_local)


class VectorizedSimulator:
    """Simulate a non-adaptive probability schedule for all ``k`` stations.

    Args:
        k: number of contending stations.
        schedule: the shared :class:`ProbabilitySchedule` (stations are
            identical, per the paper's anonymity).
        adversary: oblivious wake schedule (adaptive adversaries need the
            object engine — they react to history, which the batch sampling
            here deliberately does not expose).
        switch_off_on_ack: True for the paper's default semantics; False for
            the no-acknowledgement variant of Theorem 4.? where stations keep
            transmitting after success.
        stop: completion criterion (see :class:`StopCondition`).
        max_rounds: global-round horizon.  Must be finite; pick it from the
            protocol's theoretical bound with slack.
        seed: base seed.
        prob_table: optional precomputed ``schedule.probabilities(max_rounds)``
            (the harness caches it across repetitions).
        jam_rounds: optional iterable of global rounds destroyed by an
            oblivious jammer (see :func:`repro.channel.jamming.draw_jam_rounds`);
            a jammed round can carry no success, but attempts in it still
            cost energy.
        faults: optional :class:`~repro.faults.FaultModel`.  Oblivious
            noise and ack loss lower onto this engine exactly: under
            schedule semantics a corrupted success and a dropped ack are
            observationally identical (the would-be winner keeps
            following its schedule, no ack, no switch-off), so fault
            rounds are treated like jammed rounds in the singleton
            sweep.  Energy budgets mutate per-station liveness
            mid-protocol and are rejected here (object engine only).
    """

    def __init__(
        self,
        k: int,
        schedule: ProbabilitySchedule,
        adversary: WakeSchedule,
        *,
        switch_off_on_ack: bool = True,
        stop: StopCondition = StopCondition.ALL_SWITCHED_OFF,
        max_rounds: int = 100_000,
        seed: Optional[int] = None,
        prob_table: Optional[np.ndarray] = None,
        jam_rounds=None,
        faults=None,
    ):
        if k < 1:
            raise ValueError(f"need at least one station, got k={k}")
        if max_rounds < 1:
            raise ValueError(f"max_rounds must be >= 1, got {max_rounds}")
        if not isinstance(adversary, WakeSchedule):
            raise TypeError(
                "VectorizedSimulator only supports oblivious WakeSchedule "
                "adversaries; use SlotSimulator for adaptive adversaries"
            )
        if faults is not None and faults.energy_budget is not None:
            raise TypeError(
                "VectorizedSimulator does not model energy budgets; "
                "use SlotSimulator for EnergyBudget faults"
            )
        self.k = k
        self.schedule = schedule
        self.adversary = adversary
        self.switch_off_on_ack = switch_off_on_ack
        self.stop = stop
        self.max_rounds = max_rounds
        self.seed = seed
        self._prob_table = prob_table
        self._jam_rounds = (
            frozenset(int(r) for r in jam_rounds) if jam_rounds is not None else None
        )
        self.faults = faults

    def run(self) -> RunResult:
        phase = telemetry.timer()
        rng_factory = RngFactory(self.seed)
        adversary_rng = rng_factory.next_generator()
        station_rng = rng_factory.next_generator()

        wake = np.asarray(
            self.adversary.wake_rounds(self.k, adversary_rng), dtype=np.int64
        )
        if wake.shape != (self.k,):
            raise ValueError("adversary produced a malformed wake schedule")

        horizon = self.schedule.horizon()
        # Longest local clock any station can run within the global horizon.
        max_local = int(self.max_rounds - wake.min())
        if horizon is not None:
            max_local = min(max_local, horizon)
        max_local = max(max_local, 1)

        if self._prob_table is not None and len(self._prob_table) >= max_local:
            p = np.asarray(self._prob_table[:max_local], dtype=float)
            check_prob_table(self.schedule, p, max_local)
        else:
            p = self.schedule.probabilities(max_local)
        cum_hazard = hazard_table(p)

        # The flat (station, local_round) event stream, station-major.
        stations_flat, local_flat = sample_station_events(
            station_rng, self.schedule, self.k, cum_hazard, max_local
        )
        globals_flat = local_flat + wake[stations_flat]
        keep = globals_flat <= self.max_rounds
        stations_flat = stations_flat[keep]
        globals_flat = globals_flat[keep]
        order = np.argsort(globals_flat, kind="stable")
        stations_flat = stations_flat[order]
        globals_flat = globals_flat[order]
        if phase:
            phase.lap("vectorized.sample")

        fault_set: frozenset = frozenset()
        noise_set: frozenset = frozenset()
        slots_corrupted = 0
        acks_dropped = 0
        if self.faults is not None:
            with telemetry.span("fault.plan"):
                fault_plan = self.faults.plan(self.seed, self.max_rounds)
            fault_set = fault_plan.fault_set
            noise_set = fault_plan.noise_set

        first_success = np.full(self.k, -1, dtype=np.int64)
        alive = np.ones(self.k, dtype=bool)
        attempts = np.zeros(self.k, dtype=np.int64)
        successes = 0
        rounds_executed = 0
        completed = False

        def stop_now(successes: int) -> bool:
            if self.stop is StopCondition.FIRST_SUCCESS:
                return successes >= 1
            return successes >= self.k

        # Stopping early on the success count is only sound when success
        # implies switch-off (ack semantics) or the criterion *is* the
        # success count.  Under ALL_SWITCHED_OFF without acks a station
        # keeps transmitting (and burning energy) until its schedule
        # horizon runs out — exactly like the object engine — so the sweep
        # must consume every event.
        early_stop = self.stop is not StopCondition.ALL_SWITCHED_OFF or (
            self.switch_off_on_ack
        )

        n = len(globals_flat)
        idx = 0
        while idx < n:
            t = globals_flat[idx]
            end = idx
            while end < n and globals_flat[end] == t:
                end += 1
            group = stations_flat[idx:end]
            idx = end
            live = group[alive[group]]
            attempts[live] += 1
            ti = int(t)
            jammed = self._jam_rounds is not None and ti in self._jam_rounds
            faulted = ti in fault_set
            if live.size == 1 and not jammed and faulted:
                # A would-be success suppressed by a fault: attribute it
                # (noise wins over ack loss, as in the object engine).
                if ti in noise_set:
                    slots_corrupted += 1
                else:
                    acks_dropped += 1
            if live.size == 1 and not jammed and not faulted:
                winner = int(live[0])
                if first_success[winner] < 0:
                    first_success[winner] = t
                    successes += 1
                if self.switch_off_on_ack:
                    alive[winner] = False
                rounds_executed = int(t)
                if early_stop and stop_now(successes):
                    completed = True
                    break
            rounds_executed = int(t)
        if phase:
            phase.lap("vectorized.sweep")
            telemetry.count("vectorized.runs")
            telemetry.count("vectorized.events", n)
        if self.faults is not None and telemetry.enabled():
            telemetry.count("fault.runs")
            telemetry.count("fault.slots_corrupted", slots_corrupted)
            telemetry.count("fault.acks_dropped", acks_dropped)

        if not completed:
            rounds_executed = self.max_rounds
            if self.stop is StopCondition.ALL_SWITCHED_OFF:
                # A station switches off on its ack (ack semantics) or one
                # round past its schedule horizon (ScheduleProtocol switches
                # off at local round ``horizon + 1``); with neither, it never
                # does and the run cannot complete — matching SlotSimulator.
                off_rounds: Optional[list[int]] = []
                for i in range(self.k):
                    if self.switch_off_on_ack and first_success[i] >= 0:
                        off_rounds.append(int(first_success[i]))
                    elif horizon is not None:
                        off_rounds.append(int(wake[i]) + horizon + 1)
                    else:
                        off_rounds = None
                        break
                if off_rounds is not None and max(off_rounds) <= self.max_rounds:
                    completed = True
                    rounds_executed = max(off_rounds)

        records = []
        for i in range(self.k):
            success_round = int(first_success[i]) if first_success[i] >= 0 else None
            if self.switch_off_on_ack and success_round is not None:
                switch_off = success_round
            elif horizon is not None:
                # ScheduleProtocol switches off when it first *sees* local
                # round horizon + 1; the run must last that long for the
                # switch-off to be observed.
                off = int(wake[i]) + horizon + 1
                switch_off = off if off <= rounds_executed else None
            else:
                switch_off = None
            records.append(
                StationRecord(
                    station_id=i,
                    wake_round=int(wake[i]),
                    first_success_round=success_round,
                    switch_off_round=switch_off,
                    transmissions=int(attempts[i]),
                )
            )
        telemetry.count("vectorized.rounds", rounds_executed)
        return RunResult(
            records=records,
            rounds_executed=rounds_executed,
            completed=completed,
            stop=self.stop,
            trace=None,
            seed=self.seed,
            protocol_name=getattr(self.schedule, "name", ""),
            adversary_name=getattr(self.adversary, "name", ""),
        )
