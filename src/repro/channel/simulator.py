"""The object engine: a slot-exact multiple-access channel simulator.

This engine executes the paper's model literally (Section 1): discrete
synchronous rounds, anonymous stations woken by an adversary, success iff
exactly one transmitter, acknowledgement-only feedback, no global clock
(each protocol only ever sees its *local* round index).

It supports arbitrary :class:`~repro.core.protocol.Protocol` implementations
— including the adaptive ``AdaptiveNoK`` with its control messages — and
both oblivious and adaptive adversaries.  For large sweeps of *non-adaptive*
schedules prefer :mod:`repro.channel.vectorized`.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Optional, Union

from repro.adversary.base import AdaptiveAdversary, WakeSchedule
from repro.channel.events import RoundEvent, RoundOutcome
from repro.channel.feedback import FeedbackModel, make_observation
from repro.channel.results import RunResult, StopCondition
from repro.core.protocol import Protocol
from repro.core.station import Station
from repro.telemetry import registry as telemetry
from repro.util.rng import RngFactory

__all__ = ["SlotSimulator", "default_max_rounds"]

ProtocolFactory = Callable[[], Protocol]
Adversary = Union[WakeSchedule, AdaptiveAdversary]


def default_max_rounds(k: int) -> int:
    """A generous default horizon: enough for every paper protocol at any
    realistic constant, while still bounding runaway executions."""
    return 400 * k + 20_000


class SlotSimulator:
    """Simulate one execution of a protocol under an adversary.

    Args:
        k: number of contending stations.
        protocol_factory: zero-argument callable producing a fresh
            :class:`Protocol` per station (stations are identical copies, as
            the paper's anonymity demands).
        adversary: a :class:`WakeSchedule` (oblivious) or
            :class:`AdaptiveAdversary` (online).
        feedback: channel feedback model; the paper's protocols use ACK_ONLY.
        stop: when the run counts as complete.
        max_rounds: hard horizon; None picks :func:`default_max_rounds`.
        seed: base seed for all randomness (adversary + stations).
        record_trace: keep the full per-round event log on the result.
        jammer: optional :class:`~repro.channel.jamming.Jammer`; a jammed
            round carries no successful transmission.
        faults: optional :class:`~repro.faults.FaultModel`; the object
            engine supports every component (noise, ack loss, energy
            budgets).  The fault plan is drawn from its own salted
            SeedSequence, so attaching faults never shifts the
            adversary/station streams.
    """

    def __init__(
        self,
        k: int,
        protocol_factory: ProtocolFactory,
        adversary: Adversary,
        *,
        feedback: FeedbackModel = FeedbackModel.ACK_ONLY,
        stop: StopCondition = StopCondition.ALL_SWITCHED_OFF,
        max_rounds: Optional[int] = None,
        seed: Optional[int] = None,
        record_trace: bool = False,
        jammer=None,
        faults=None,
    ):
        if k < 1:
            raise ValueError(f"need at least one station, got k={k}")
        self.k = k
        self.protocol_factory = protocol_factory
        self.adversary = adversary
        self.feedback = feedback
        self.stop = stop
        self.max_rounds = max_rounds if max_rounds is not None else default_max_rounds(k)
        self.seed = seed
        self.record_trace = record_trace
        self.jammer = jammer
        self.faults = faults

    def run(self) -> RunResult:
        rng_factory = RngFactory(self.seed)
        adversary_rng = rng_factory.next_generator()
        if self.jammer is not None:
            self.jammer.begin(rng_factory.next_generator())

        noise_set: frozenset = frozenset()
        ack_set: frozenset = frozenset()
        energy_cap: Optional[int] = None
        slots_corrupted = 0
        acks_dropped = 0
        stations_exhausted = 0
        if self.faults is not None:
            with telemetry.span("fault.plan"):
                fault_plan = self.faults.plan(self.seed, self.max_rounds)
            noise_set = fault_plan.noise_set
            ack_set = fault_plan.ack_set
            if self.faults.energy_budget is not None:
                energy_cap = self.faults.energy_budget.charges

        adaptive = isinstance(self.adversary, AdaptiveAdversary)
        if adaptive:
            self.adversary.begin(self.k, adversary_rng)
            wake_deadline = self.adversary.deadline(self.k)
            pending_by_round: dict[int, int] = {}
        else:
            rounds = self.adversary.wake_rounds(self.k, adversary_rng)
            if len(rounds) != self.k:
                raise ValueError(
                    f"adversary produced {len(rounds)} wake rounds for k={self.k}"
                )
            pending_by_round = {}
            for r in rounds:
                pending_by_round[int(r)] = pending_by_round.get(int(r), 0) + 1
            wake_deadline = max(rounds) if rounds else 0

        stations: list[Station] = []
        active: list[Station] = []
        history: list[RoundEvent] = []
        woken = 0
        succeeded = 0
        switched_off = 0

        def wake(count: int, at_round: int) -> None:
            nonlocal woken
            count = min(count, self.k - woken)
            for _ in range(count):
                station = Station(
                    station_id=len(stations),
                    wake_round=at_round,
                    protocol=self.protocol_factory(),
                    rng=rng_factory.next_generator(),
                )
                stations.append(station)
                active.append(station)
                woken += 1

        def stop_met() -> bool:
            if self.stop is StopCondition.FIRST_SUCCESS:
                return succeeded >= 1
            if woken < self.k:
                return False
            if self.stop is StopCondition.ALL_SUCCEEDED:
                return succeeded >= self.k
            return switched_off >= self.k

        # Sampled round tracing: 0 (the disabled default) keeps the hot
        # loop's telemetry cost to one integer truthiness check per round.
        sample = telemetry.trace_sample()

        # Round 0 wakes (stations present "from the very beginning").
        if adaptive:
            wake(self.adversary.wake_now(0, history), 0)
        elif 0 in pending_by_round:
            wake(pending_by_round.pop(0), 0)

        t = 0
        while t < self.max_rounds:
            t += 1
            # 1. Adversary wakes stations at the start of round t.
            if woken < self.k:
                if adaptive:
                    want = self.adversary.wake_now(t, history)
                    if t >= wake_deadline:
                        want = self.k - woken
                    if want > 0:
                        wake(want, t)
                elif t in pending_by_round:
                    wake(pending_by_round.pop(t), t)

            # 2. Collect decisions from stations with local round >= 1.
            transmitters: list[tuple[Station, object]] = []
            for station in active:
                if station.local_round(t) < 1:
                    continue
                decision = station.decide(t)
                if decision is not None:
                    transmitters.append((station, decision.payload))

            # 3. Resolve the channel.
            m = len(transmitters)
            jammed = self.jammer is not None and self.jammer.jams(t, history)
            if jammed and m > 0:
                outcome = RoundOutcome.COLLISION
            else:
                # A jam in an empty round destroys nothing: the channel is
                # silent, exactly as the vectorised engine (which never
                # materialises transmitter-free rounds) accounts for it.
                outcome = RoundOutcome.from_transmitter_count(m)
            # Fault hooks: noise corrupts a would-be success into a
            # collision; ack loss keeps the success on the air but drops
            # the winner's acknowledgement.  Noise wins when both fire.
            ack_dropped = False
            corrupted = False
            if outcome is RoundOutcome.SUCCESS:
                if t in noise_set:
                    outcome = RoundOutcome.COLLISION
                    corrupted = True
                    slots_corrupted += 1
                elif t in ack_set:
                    ack_dropped = True
                    acks_dropped += 1
            winner: Optional[Station] = None
            delivered: Optional[object] = None
            if outcome is RoundOutcome.SUCCESS:
                winner, delivered = transmitters[0]

            event = RoundEvent(
                round_index=t,
                outcome=outcome,
                transmitter_count=m,
                winner=winner.station_id if winner is not None else None,
                message=delivered,
                jammed=jammed,
                corrupted=corrupted,
            )
            history.append(event)
            if sample and t % sample == 0:
                telemetry.event(
                    "simulator.round",
                    {
                        "round": t,
                        "outcome": outcome.name,
                        "transmitters": m,
                        "active": len(active),
                        "woken": woken,
                        "jammed": jammed,
                    },
                )

            # 4. Deliver observations to every station active this round.
            transmitted_ids = {station.station_id for station, _ in transmitters}
            for station in active:
                local = station.local_round(t)
                if local < 1:
                    continue
                did_transmit = station.station_id in transmitted_ids
                obs = make_observation(
                    local_round=local,
                    transmitted=did_transmit,
                    outcome=outcome,
                    is_winner=(
                        winner is not None and station is winner and not ack_dropped
                    ),
                    delivered=delivered,
                    model=self.feedback,
                )
                was_succeeded = station.first_success_round is not None
                station.observe(obs, t)
                if station.first_success_round is not None and not was_succeeded:
                    succeeded += 1

            # 4b. Energy budget: a station that has spent its charges is
            # switched off at the end of the round, succeeded or not.
            if energy_cap is not None:
                for station in active:
                    if (
                        station.active
                        and station.transmissions + station.listening_slots
                        >= energy_cap
                    ):
                        station.switch_off_round = t
                        stations_exhausted += 1

            # 5. Retire switched-off stations.
            still_active = [s for s in active if s.active]
            switched_off += len(active) - len(still_active)
            active = still_active

            if stop_met():
                break

        completed = stop_met()
        if telemetry.enabled():
            telemetry.count("simulator.runs")
            telemetry.count("simulator.rounds", t)
            telemetry.observe("simulator.run_rounds", t)
            tallies = {
                RoundOutcome.SUCCESS: 0,
                RoundOutcome.COLLISION: 0,
                RoundOutcome.SILENCE: 0,
            }
            for ev in history:
                tallies[ev.outcome] = tallies.get(ev.outcome, 0) + 1
            telemetry.count("simulator.successes", tallies[RoundOutcome.SUCCESS])
            telemetry.count("simulator.collisions", tallies[RoundOutcome.COLLISION])
            telemetry.count("simulator.silent_rounds", tallies[RoundOutcome.SILENCE])
            if self.faults is not None:
                telemetry.count("fault.runs")
                telemetry.count("fault.slots_corrupted", slots_corrupted)
                telemetry.count("fault.acks_dropped", acks_dropped)
                telemetry.count("fault.stations_exhausted", stations_exhausted)
        return RunResult(
            records=[s.record() for s in stations],
            rounds_executed=t,
            completed=completed,
            stop=self.stop,
            trace=history if self.record_trace else None,
            seed=self.seed,
            protocol_name=getattr(self.protocol_factory, "protocol_name", ""),
            adversary_name=getattr(self.adversary, "name", ""),
        )
