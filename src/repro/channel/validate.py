"""Run validation: check a finished execution against the model's invariants.

``validate_run`` inspects a :class:`~repro.channel.results.RunResult` (and
its trace, when recorded) and raises :class:`InvariantViolation` on the
first broken rule.  The property-based tests funnel every randomly
generated execution through it, and downstream users can apply it to their
own runs as a cheap sanity harness when extending the library.
"""

from __future__ import annotations

from typing import Optional

from repro.channel.events import RoundOutcome
from repro.channel.results import RunResult, StopCondition

__all__ = ["InvariantViolation", "validate_run"]


class InvariantViolation(AssertionError):
    """A model invariant failed for a concrete execution."""


def _fail(message: str) -> None:
    raise InvariantViolation(message)


def validate_run(result: RunResult, *, k: Optional[int] = None) -> None:
    """Check all model invariants that are decidable from the result.

    Args:
        result: the execution to validate.
        k: expected number of stations (defaults to ``result.k``).

    Raises:
        InvariantViolation: with a description of the first broken rule.
    """
    expected_k = k if k is not None else result.k
    if result.k != expected_k:
        _fail(f"expected {expected_k} stations, found {result.k}")

    seen_ids = set()
    for record in result.records:
        rid = record.station_id
        if rid in seen_ids:
            _fail(f"duplicate station id {rid}")
        seen_ids.add(rid)

        if record.wake_round < 0:
            _fail(f"station {rid}: negative wake round {record.wake_round}")
        if record.transmissions < 0 or record.listening_slots < 0:
            _fail(f"station {rid}: negative activity counters")

        if record.first_success_round is not None:
            if record.first_success_round <= record.wake_round:
                _fail(
                    f"station {rid}: success at {record.first_success_round} "
                    f"not after wake {record.wake_round} (local round 0 "
                    f"cannot transmit)"
                )
            if record.transmissions < 1:
                _fail(f"station {rid}: succeeded without transmitting")
            if record.first_success_round > result.rounds_executed:
                _fail(f"station {rid}: success beyond the executed horizon")

        if record.switch_off_round is not None:
            if record.switch_off_round < record.wake_round:
                _fail(f"station {rid}: switched off before waking")
            if (
                record.first_success_round is not None
                and record.switch_off_round < record.first_success_round
            ):
                _fail(f"station {rid}: switched off before its own success")

    # Stop-condition consistency.
    if result.completed:
        if result.stop is StopCondition.FIRST_SUCCESS:
            if result.success_count < 1:
                _fail("completed FIRST_SUCCESS run without a success")
        elif result.stop is StopCondition.ALL_SUCCEEDED:
            if result.success_count != result.k:
                _fail("completed ALL_SUCCEEDED run with missing successes")
        else:
            if any(r.switch_off_round is None for r in result.records):
                _fail("completed ALL_SWITCHED_OFF run with live stations")

    if result.trace is None:
        return

    # Trace-level invariants.
    last_round = 0
    success_rounds: dict[int, int] = {}
    for event in result.trace:
        if event.round_index <= last_round:
            _fail(f"trace rounds not strictly increasing at {event.round_index}")
        last_round = event.round_index
        if event.jammed and event.outcome is not RoundOutcome.COLLISION:
            _fail(f"round {event.round_index}: jammed round not a collision")
        if event.outcome is RoundOutcome.SUCCESS:
            if event.winner is None:
                _fail(f"round {event.round_index}: success without a winner")
            if event.winner in success_rounds and result.stop is not None:
                # A station may only win repeatedly if it outlives success
                # (leaders, no-ack variants); record but don't fail here.
                pass
            success_rounds.setdefault(event.winner, event.round_index)
    if last_round > result.rounds_executed:
        _fail("trace extends beyond rounds_executed")

    # Cross-check: each station's first recorded success appears in the
    # trace at the same round.
    for record in result.records:
        if record.first_success_round is None:
            continue
        traced = success_rounds.get(record.station_id)
        if traced is not None and traced != record.first_success_round:
            _fail(
                f"station {record.station_id}: record says first success at "
                f"{record.first_success_round}, trace says {traced}"
            )
