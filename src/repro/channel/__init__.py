"""The shared-channel substrate: events, feedback, and the two engines."""

from repro.channel.events import RoundEvent, RoundOutcome
from repro.channel.feedback import FeedbackModel, Observation
from repro.channel.messages import (
    AnybodyOutThereProbe,
    DataPacket,
    DModeAnnouncement,
    control_bit,
)
from repro.channel.jamming import (
    Jammer,
    PeriodicJammer,
    RandomJammer,
    ReactiveJammer,
    ScheduledJammer,
    draw_jam_rounds,
)
from repro.channel.results import RunResult, StopCondition
from repro.channel.simulator import SlotSimulator, default_max_rounds
from repro.channel.trace_tools import (
    dump_run_result,
    load_run_result,
    render_timeline,
    success_gaps,
)
from repro.channel.traffic import (
    ArrivalWakeSchedule,
    QueueSimulator,
    draw_packets,
    traffic_reduction,
)
from repro.channel.validate import InvariantViolation, validate_run
from repro.channel.vectorized import VectorizedSimulator, hazard_table

__all__ = [
    "Jammer",
    "PeriodicJammer",
    "RandomJammer",
    "ReactiveJammer",
    "ScheduledJammer",
    "draw_jam_rounds",
    "dump_run_result",
    "load_run_result",
    "render_timeline",
    "success_gaps",
    "InvariantViolation",
    "validate_run",
    "RoundEvent",
    "RoundOutcome",
    "FeedbackModel",
    "Observation",
    "AnybodyOutThereProbe",
    "DataPacket",
    "DModeAnnouncement",
    "control_bit",
    "RunResult",
    "StopCondition",
    "SlotSimulator",
    "default_max_rounds",
    "VectorizedSimulator",
    "hazard_table",
    "ArrivalWakeSchedule",
    "QueueSimulator",
    "draw_packets",
    "traffic_reduction",
]
