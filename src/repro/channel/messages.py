"""Message payloads carried on the channel.

Non-adaptive protocols only ever transmit the station's own data packet.
The adaptive protocol of Section 5 (``AdaptiveNoK``) additionally sends
one-bit control messages, encoded per the paper:

* bit 0 — ``<D mode>``: the leader announces the dissemination mode;
* bit 1 — ``<is there anybody out there?>``: probe whether any synchronized
  station is still alive.

These are modelled as distinct frozen dataclasses so listening stations can
dispatch on the message type without string parsing.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "DataPacket",
    "DModeAnnouncement",
    "AnybodyOutThereProbe",
    "control_bit",
]


@dataclass(frozen=True, slots=True)
class DataPacket:
    """The payload each station must deliver (the contention-resolution goal).

    Packets are *not* usable as identifiers by the protocols (stations are
    anonymous); ``origin`` exists purely for bookkeeping by the simulator and
    test assertions.
    """

    origin: int


@dataclass(frozen=True, slots=True)
class DModeAnnouncement:
    """``<D mode>`` control message (bit 0), sent by the leader in black rounds."""


@dataclass(frozen=True, slots=True)
class AnybodyOutThereProbe:
    """``<is there anybody out there?>`` control message (bit 1).

    Sent jointly in white rounds (``tc == 2**x``) by the leader and all
    still-alive synchronized stations; the leader interprets an ack on this
    probe as "everyone else is done".
    """


def control_bit(message: object) -> int | None:
    """Return the one-bit encoding of a control message, or None for data.

    >>> control_bit(DModeAnnouncement()), control_bit(AnybodyOutThereProbe())
    (0, 1)
    >>> control_bit(DataPacket(origin=3)) is None
    True
    """
    if isinstance(message, DModeAnnouncement):
        return 0
    if isinstance(message, AnybodyOutThereProbe):
        return 1
    return None
