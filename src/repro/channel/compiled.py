"""The compiled engine: table-driven numpy execution of protocol machines.

:mod:`repro.engine.compile` lowers a finite protocol state machine to two
tables (``(mode, counter) -> probability``, ``(mode, symbol) -> mode``);
this module executes the lowered program for a whole batch of repetitions
at once.  All ``R x k`` stations become *lanes* of flat numpy arrays and
every round advances them together: one gather picks each lane's
Bernoulli parameter, one ``bincount`` per round resolves the channel of
all repetitions, one gather maps feedback symbols to next modes.

Byte identity with the object engine
------------------------------------

The contract is the strongest the repo has: ``run_compiled_batch(spec,
seeds)`` equals ``[SlotSimulator-run of spec.with_seed(s)] for s in
seeds`` **exactly** — station ids, wake/first-success/switch-off rounds,
transmission and listening-slot counts, completion, rounds executed.
Equality per seed (not merely in distribution) requires consuming each
station's RNG stream in the object engine's order.  Three mechanisms
deliver that without a Python loop per round:

* **Seed fan-out.**  Each repetition spawns its ``SeedSequence`` children
  exactly as :class:`~repro.util.rng.RngFactory` does — adversary child
  first, one jammer child when ``jam_rounds`` is set (the object engine
  seeds a :class:`~repro.channel.jamming.ScheduledJammer`), then one
  child per station in chronological wake order.  Spawning all children
  in one call yields the same children as the factory's successive
  ``spawn(1)`` calls.

* **Prefetched uniform blocks + rewind.**  A mode that draws uniforms
  (election, schedule rounds, wake-up beacons) consumes
  ``Generator.random()`` scalars one per round.  A block draw
  ``random(B)`` consumes the identical stream, so each lane prefetches a
  block and the stepper serves draws from per-lane cursors — vectorized.
  When a lane *leaves* a drawing mode with unconsumed prefetch, its
  generator is rewound to the position after its last *consumed* draw by
  restoring the bit-generator state snapshotted at the refill and
  re-drawing the consumed count.  (A pure ``advance()`` rewind would
  lose the bit generator's cached uint32 half-word: numpy's bounded
  ``integers`` serves 32-bit halves of one uint64 draw across *two*
  calls, and that cache — set by a sawtooth draw *before* an election,
  consumed by the first sawtooth draw *after* it — survives any number
  of interleaved ``random()`` calls.  State restoration carries it;
  counter arithmetic cannot.)

* **Sparse direct draws.**  The sawtooth's ``integers(0, window)`` draws
  happen only at window advances — ``O(log^2 horizon)`` per station — and
  are made directly on the lane's generator at exactly the object
  engine's position in the stream.  (A ``window == 1`` choice consumes no
  generator state at all — numpy short-circuits single-value ranges — so
  sawtooth initialisation is free, matching ``SawtoothState.__init__``.)

Everything else is arithmetic shared with the object engine: wakes at
round start, decisions for lanes with local round >= 1, ``0/1/many``
channel resolution with oblivious jamming, observation delivery to active
lanes, retirement, stop conditions — in the object engine's exact order.

Two capabilities ride on the same per-round structure:

* **Adaptive adversaries.**  A lowered :class:`AdversaryProgram` is one
  Mealy machine per repetition: at each round the stepper gathers
  ``(state, previous outcome) -> wake count / next state`` for every
  live repetition still holding unwoken stations, appends the newly
  woken lanes in chronological order (so lane ``j`` of a repetition is
  its ``j``-th woken station, exactly the object engine's id and RNG
  assignment), and force-wakes the remainder at ``adversary.deadline(k)``
  — mirroring ``SlotSimulator``'s call order, including the state step
  on deadline rounds.

* **Collision-detection feedback.**  Under
  ``FeedbackModel.COLLISION_DETECTION`` every active lane additionally
  receives the round's common channel outcome: on non-success rounds the
  per-repetition outcome maps to ``SYM_CD_SILENCE`` / ``SYM_CD_COLLISION``
  (success rounds keep the ordinary ack / heard-payload symbols, which
  already imply success).  ACK-only machines carry identity transitions
  on the CD columns, so delivery is unconditional and byte-neutral for
  them; ``CdAimdProtocol`` walks its window lattice on exactly these
  symbols.

Speed comes from batching: the per-round numpy cost is amortised over all
``R x k`` lanes, so the engine pays off on repetition sweeps (the
1000-rep acceptance configuration in ``benchmarks/test_bench_compiled.py``
clears 10x over the object engine) while a single small run is dominated
by setup.  Dispatch (:func:`repro.engine.dispatch.execute_batch`) fuses
repetitions through this path exactly when the spec is
compiled-admissible.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Optional

import numpy as np

from repro.adversary.base import AdaptiveAdversary, WakeSchedule
from repro.channel.feedback import FeedbackModel
from repro.channel.results import RunResult, StopCondition
from repro.core.spec import RunSpec
from repro.core.station import StationRecord
from repro.engine.compile import (
    ADV_COLLISION,
    ADV_SILENCE,
    ADV_SUCCESS,
    ANK_ELECTION,
    ANK_LEADER,
    ANK_MEMBER,
    ANK_WAITING,
    HEAR_SYMBOL_OF_PAYLOAD,
    OFF,
    PAYLOAD_ANY,
    PAYLOAD_BEACON,
    PAYLOAD_DATA,
    PAYLOAD_DMODE,
    PAYLOAD_PROBE,
    SYM_ACK,
    SYM_CD_COLLISION,
    SYM_CD_SILENCE,
    SYM_HEAR_BEACON,
    SYM_HEAR_DATA,
    SYM_HEAR_DMODE,
    SYM_HEAR_PROBE,
    AdversaryProgram,
    CompiledProgram,
    adversary_lowering_reason,
    compile_adversary,
    compile_spec,
)
from repro.telemetry import registry as telemetry

__all__ = ["CompiledSimulator", "run_compiled_batch"]

#: "Never happens" sentinel for round numbers (first success / switch-off).
_INF = np.iinfo(np.int64).max

#: Channel outcome (ADV_SILENCE/ADV_SUCCESS/ADV_COLLISION) -> the CD
#: symbol active lanes receive; 0 on success (ack / heard-payload symbols
#: already carry the outcome there).
_CD_SYMBOL_OF_OUTCOME = np.array(
    [SYM_CD_SILENCE, 0, SYM_CD_COLLISION], dtype=np.int8
)


def _resolve_seeds(
    spec: RunSpec, n_reps: Optional[int], seeds: Optional[Sequence[Optional[int]]]
) -> list[Optional[int]]:
    if seeds is None:
        if n_reps is None:
            raise ValueError(
                "run_compiled_batch needs n_reps or an explicit seed list"
            )
        if spec.seed is None:
            raise ValueError(
                "run_compiled_batch(spec, n_reps) derives per-rep seeds from "
                "spec.seed; set spec.seed or pass seeds explicitly"
            )
        return [spec.seed + r for r in range(n_reps)]
    seed_list = [None if s is None else int(s) for s in seeds]
    if n_reps is not None and n_reps != len(seed_list):
        raise ValueError(
            f"n_reps={n_reps} disagrees with len(seeds)={len(seed_list)}"
        )
    return seed_list


class _LaneRng:
    """Per-lane generators with block-prefetched uniform draws.

    ``uniform(idx)`` returns one draw per lane in ``idx``, served from each
    lane's prefetched block (refilled ``buffer_len`` draws at a time).
    ``rewind(idx)`` returns lanes' generators to the position of their last
    *consumed* draw; ``integers(lane, high)`` draws directly (used by the
    sawtooth at window advances, where the stream position must be exact).
    """

    def __init__(self, children: list, buffer_len: int):
        self._gens: list = [None] * len(children)
        self._children = children
        self._buf = np.empty((len(children), buffer_len), dtype=np.float64)
        self._ptr = np.full(len(children), buffer_len, dtype=np.int32)
        self._blen = buffer_len
        # Bit-generator state snapshot taken at each lane's last refill;
        # rewind restores it and replays the consumed prefix.
        self._saved: list = [None] * len(children)

    def _generator(self, lane: int) -> np.random.Generator:
        gen = self._gens[lane]
        if gen is None:
            gen = np.random.Generator(np.random.PCG64(self._children[lane]))
            self._gens[lane] = gen
        return gen

    def uniform(self, idx: np.ndarray) -> np.ndarray:
        ptr = self._ptr
        empty = idx[ptr[idx] >= self._blen]
        if empty.size:
            buf, blen, saved, gens = self._buf, self._blen, self._saved, self._gens
            for lane in empty.tolist():
                gen = gens[lane]
                if gen is None:
                    gen = self._generator(lane)
                saved[lane] = gen.bit_generator.state
                buf[lane] = gen.random(blen)
            ptr[empty] = 0
        u = self._buf[idx, ptr[idx]]
        ptr[idx] += 1
        return u

    def rewind(self, idx: np.ndarray) -> None:
        ptr, blen = self._ptr, self._blen
        pending = idx[ptr[idx] < blen]
        if pending.size == 0:
            return
        for lane, consumed in zip(pending.tolist(), ptr[pending].tolist()):
            gen = self._gens[lane]
            gen.bit_generator.state = self._saved[lane]
            if consumed:
                gen.random(consumed)
        ptr[pending] = blen

    def integers(self, lane: int, high: int) -> int:
        gen = self._gens[lane]
        if gen is None:
            gen = self._generator(lane)
        return int(gen.integers(0, high))


class _Lanes:
    """Flat per-lane state shared by every machine kind."""

    def __init__(self, N: int, program: CompiledProgram):
        self.mode = np.full(N, program.start_mode, dtype=np.int8)
        self.alive = np.ones(N, dtype=bool)
        self.counter = np.zeros(N, dtype=np.int64)  # election_i / wakeup_i
        self.tc = np.zeros(N, dtype=np.int64)  # D-mode virtual clock
        self.window_rounds = np.zeros(N, dtype=np.int8)
        self.saw_message = np.zeros(N, dtype=bool)
        self.saw_probe = np.zeros(N, dtype=bool)
        # Sawtooth window iterator (member odd rounds / SUniform).
        self.st_outer = np.ones(N, dtype=np.int64)
        self.st_window = np.ones(N, dtype=np.int64)
        self.st_position = np.zeros(N, dtype=np.int64)
        self.st_slot = np.zeros(N, dtype=np.int64)
        # GlobalClockUFR's adopted data-round probability (< 0: none yet).
        self.adopted = np.full(N, -1.0, dtype=np.float64)
        # Result accumulators.
        self.fs = np.full(N, _INF, dtype=np.int64)
        self.off = np.full(N, _INF, dtype=np.int64)
        self.tx = np.zeros(N, dtype=np.int64)
        self.listen = np.zeros(N, dtype=np.int64)
        # Per-round scratch (reset per round on the active subset).
        self.transmit = np.zeros(N, dtype=bool)
        self.payload = np.zeros(N, dtype=np.int8)
        self.sym = np.zeros(N, dtype=np.int8)
        self.p_used = np.zeros(N, dtype=np.float64)  # beacon probability


def _reset_waiting(lanes: _Lanes, idx: np.ndarray) -> None:
    lanes.window_rounds[idx] = 0
    lanes.saw_message[idx] = False
    lanes.saw_probe[idx] = False


def _init_sawtooth(lanes: _Lanes, idx: np.ndarray) -> None:
    # SawtoothState.__init__: outer = window = 1, position = 0; the initial
    # _choose_slot() is integers(0, 1), which consumes no generator state.
    lanes.st_outer[idx] = 1
    lanes.st_window[idx] = 1
    lanes.st_position[idx] = 0
    lanes.st_slot[idx] = 0


def _sawtooth_step(lanes: _Lanes, rng: _LaneRng, idx: np.ndarray) -> np.ndarray:
    """One ``SawtoothState.step()`` per lane in ``idx``; returns transmit mask."""
    transmit = lanes.st_position[idx] == lanes.st_slot[idx]
    lanes.st_position[idx] += 1
    adv = idx[lanes.st_position[idx] >= lanes.st_window[idx]]
    if adv.size:
        lanes.st_position[adv] = 0
        shrink = lanes.st_window[adv] > 1
        inner = adv[shrink]
        outer = adv[~shrink]
        lanes.st_window[inner] //= 2
        lanes.st_outer[outer] *= 2
        lanes.st_window[outer] = lanes.st_outer[outer]
        windows = lanes.st_window[adv]
        lanes.st_slot[adv[windows == 1]] = 0
        redraw = adv[windows > 1]
        if redraw.size:
            slots = lanes.st_slot
            for lane, window in zip(
                redraw.tolist(), lanes.st_window[redraw].tolist()
            ):
                slots[lane] = rng.integers(lane, window)
    return transmit


def _white_table(limit: int) -> np.ndarray:
    """``is_white_round(tc)`` for ``tc = 0 .. limit``: powers of two >= 4."""
    white = np.zeros(limit + 1, dtype=bool)
    power = 4
    while power <= limit:
        white[power] = True
        power *= 2
    return white


def run_compiled_batch(
    spec: RunSpec,
    n_reps: Optional[int] = None,
    seeds: Optional[Sequence[Optional[int]]] = None,
    program: Optional[CompiledProgram] = None,
    *,
    tile_reps: Optional[int] = None,
    memory_budget: Optional[object] = None,
) -> list[RunResult]:
    """Execute ``spec`` for every seed through the compiled stepper.

    Returns one :class:`RunResult` per seed, in order, byte-identical to
    object-engine (``SlotSimulator``) runs of ``spec.with_seed(seed)``.
    Spec-level admissibility is the dispatch layer's job; this function
    accepts oblivious :class:`WakeSchedule` adversaries and the lowerable
    :class:`AdaptiveAdversary` machines, ACK-only or collision-detection
    feedback, no stateful jammer and no trace request.

    Repetitions stream through memory-bounded tiles: each seed's RNG
    fan-out is independent, so slicing the seed list is byte-identical to
    one monolithic pass.  ``tile_reps``/``memory_budget`` default to the
    process-wide tiling defaults (see :mod:`repro.engine.plan`); the
    program is compiled once and shared by every tile.
    """
    if isinstance(spec.adversary, WakeSchedule):
        adv_program = None
    elif isinstance(spec.adversary, AdaptiveAdversary):
        reason = adversary_lowering_reason(spec.adversary)
        if reason is not None:
            raise TypeError(f"run_compiled_batch: {reason}")
        adv_program = compile_adversary(spec.adversary)
    else:
        raise TypeError(
            "run_compiled_batch needs a WakeSchedule or a lowerable "
            "AdaptiveAdversary (spec.adversary is "
            f"{type(spec.adversary).__name__})"
        )
    if program is None:
        program = compile_spec(spec)
    if (
        program.kind == "cd_aimd"
        and spec.feedback is not FeedbackModel.COLLISION_DETECTION
    ):
        raise TypeError(
            "CdAimdProtocol requires FeedbackModel.COLLISION_DETECTION "
            "(the object engine raises at the first observation; the "
            "compiled stepper refuses the spec up front)"
        )
    seed_list = _resolve_seeds(spec, n_reps, seeds)
    R = len(seed_list)
    if R == 0:
        return []
    from repro.engine.plan import (
        BatchMemoryError,
        build_plan,
        oversized_batch_message,
    )

    plan = build_plan(
        spec, R, memory_budget=memory_budget, tile_reps=tile_reps
    )
    results: list[RunResult] = []
    for lo, hi in plan.rep_slices():
        with telemetry.span("tile.run"):
            if telemetry.enabled():
                telemetry.count("tile.runs")
                telemetry.count("tile.reps", hi - lo)
            try:
                results.extend(
                    _run_compiled_tile(
                        spec, seed_list[lo:hi], program, adv_program
                    )
                )
            except BatchMemoryError:
                raise
            except MemoryError as error:
                raise BatchMemoryError(
                    oversized_batch_message(spec, hi - lo)
                ) from error
    return results


def _run_compiled_tile(
    spec: RunSpec,
    seed_list: Sequence[Optional[int]],
    program: CompiledProgram,
    adv_program: Optional[AdversaryProgram] = None,
) -> list[RunResult]:
    """One rep tile: the monolithic compiled stepper over ``seed_list``."""
    R = len(seed_list)
    phase = telemetry.timer()
    if phase:
        telemetry.count("compiled.batches")
        telemetry.count("compiled.reps", R)

    k = spec.k
    N = R * k
    max_rounds = spec.resolve_horizon()
    stop = spec.stop
    jam_set = frozenset(spec.jam_rounds) if spec.jam_rounds is not None else None
    # The object engine consumes one RNG child for the ScheduledJammer it
    # wraps jam_rounds in; mirror that to keep station children aligned.
    base_children = 2 if spec.jam_rounds is not None else 1
    adaptive_adv = adv_program is not None
    cd = spec.feedback is FeedbackModel.COLLISION_DETECTION
    # The adversary tables (and CD delivery) need the per-repetition
    # channel outcome every round, even on jammed ones.
    need_outcome = adaptive_adv or cd

    # ---- per-repetition seed fan-out and wake draws (chronological).
    wake = np.empty(N, dtype=np.int64)
    children: list = [None] * N
    adversary = spec.adversary
    if adaptive_adv:
        # Wake rounds are decided online; lanes are still pre-assigned in
        # chronological wake order (the j-th lane of a repetition becomes
        # its j-th woken station), so the RNG children pair up exactly as
        # the object engine's successive next_generator() calls.  The
        # adversary child (kids[0]) is spawned for stream alignment; none
        # of the lowerable adversaries draws from it.
        wake.fill(_INF)
        for rep, seed in enumerate(seed_list):
            kids = np.random.SeedSequence(seed).spawn(base_children + k)
            children[rep * k : (rep + 1) * k] = kids[base_children:]
    else:
        for rep, seed in enumerate(seed_list):
            kids = np.random.SeedSequence(seed).spawn(base_children + k)
            adversary_rng = np.random.Generator(np.random.PCG64(kids[0]))
            rounds = adversary.wake_rounds(k, adversary_rng)
            if len(rounds) != k:
                raise ValueError(
                    f"adversary produced {len(rounds)} wake rounds for k={k}"
                )
            drawn = np.asarray(rounds, dtype=np.int64)
            # Stations are anonymous: the object engine assigns ids and RNG
            # children in chronological wake order, so sort each repetition's
            # draws and pair child j with the j-th woken station.
            drawn.sort(kind="stable")
            wake[rep * k : (rep + 1) * k] = drawn
            children[rep * k : (rep + 1) * k] = kids[base_children:]

    rep_of = np.repeat(np.arange(R, dtype=np.int64), k)
    lanes = _Lanes(N, program)
    rng = _LaneRng(children, program.buffer_len)

    # ---- per-repetition bookkeeping.
    woken = np.zeros(R, dtype=np.int64)
    succeeded = np.zeros(R, dtype=np.int64)
    switched_off = np.zeros(R, dtype=np.int64)
    rep_live = np.ones(R, dtype=bool)
    stop_round = np.full(R, max_rounds, dtype=np.int64)
    rep_completed = np.zeros(R, dtype=bool)

    kind = program.kind
    adaptive = kind == "adaptive_no_k"
    white = _white_table(max_rounds + 1) if adaptive else None
    horizon = program.horizon
    listen_window = program.listen_window
    next_mode = program.next_mode
    ack_guard = program.ack_payload_guard
    parity_guard = program.control_parity_guard
    prob_rows = program.prob_rows
    guarded_acks = bool(np.any(ack_guard != PAYLOAD_ANY))
    any_parity_guard = bool(parity_guard.any())

    # started[lane]: wake < current round (the lane decides/observes).
    # lane_live[lane]: the lane's repetition has not stopped.
    started = np.zeros(N, dtype=bool)
    lane_live = np.ones(N, dtype=bool)
    if adaptive_adv:
        # Online wakes: per-repetition Mealy state plus the previous
        # round's outcome drive the wake counts; the deadline force-wake
        # mirrors SlotSimulator (wake_now is still "called" first — the
        # state steps on deadline rounds too).
        wake_order = wake_sorted = None
        wake_ptr = started_ptr = N
        deadline = adversary.deadline(k)
        adv_state = np.full(R, adv_program.start_state, dtype=np.int64)
        prev_outcome = np.zeros(R, dtype=np.int64)  # round 1 sees silence
        adv_next = adv_program.next_state
        adv_wake = adv_program.wake_count
        # Round 0: the unconditional wake_now(0, []) before the loop.
        wake0 = min(adv_program.wake0, k)
        if wake0:
            pending_started = (
                np.arange(R, dtype=np.int64)[:, None] * k
                + np.arange(wake0, dtype=np.int64)
            ).ravel()
            wake[pending_started] = 0
            woken += wake0
        else:
            pending_started = np.empty(0, dtype=np.int64)
    else:
        # Lanes sorted by wake round: pointer sweeps turn per-round wake
        # processing into O(1) amortised work instead of an O(N) scan.
        wake_order = np.argsort(wake, kind="stable")
        wake_sorted = wake[wake_order]
        wake_ptr = int(np.searchsorted(wake_sorted, 0, side="right"))
        woken += np.bincount(rep_of[wake_order[:wake_ptr]], minlength=R)
        started_ptr = 0

    def _switch_off(idx: np.ndarray, at_round: int) -> None:
        lanes.alive[idx] = False
        lanes.off[idx] = at_round
        np.add.at(switched_off, rep_of[idx], 1)

    if phase:
        phase.lap("compiled.setup")

    t = 0
    while t < max_rounds and rep_live.any():
        t += 1
        # 1. Wakes at the start of round t (dead repetitions stopped in an
        # earlier round; their later wakes never happen and are excluded
        # from the records by the wake <= rounds_executed filter).
        if adaptive_adv:
            # Lanes woken last round become active (local round >= 1) now.
            if pending_started.size:
                started[pending_started] = True
                pending_started = pending_started[:0]
            # SlotSimulator consults wake_now only while stations remain
            # (and only for still-running repetitions), so the adversary
            # state freezes exactly when the object engine stops calling.
            eligible = np.flatnonzero(rep_live & (woken < k))
            if eligible.size:
                s = adv_state[eligible]
                y = prev_outcome[eligible]
                adv_state[eligible] = adv_next[s, y]
                if t >= deadline:
                    want = k - woken[eligible]
                else:
                    want = np.minimum(adv_wake[s, y], k - woken[eligible])
                waking = want > 0
                if waking.any():
                    reps_w = eligible[waking]
                    counts_w = want[waking]
                    starts = reps_w * k + woken[reps_w]
                    total = int(counts_w.sum())
                    offsets = np.arange(total, dtype=np.int64) - np.repeat(
                        np.cumsum(counts_w) - counts_w, counts_w
                    )
                    new_lanes = np.repeat(starts, counts_w) + offsets
                    wake[new_lanes] = t
                    woken[reps_w] += counts_w
                    pending_started = new_lanes
        else:
            if wake_ptr < N:
                start = wake_ptr
                while wake_ptr < N and wake_sorted[wake_ptr] == t:
                    wake_ptr += 1
                if wake_ptr > start:
                    woke_now = wake_order[start:wake_ptr]
                    np.add.at(woken, rep_of[woke_now], 1)

            # Active = woken before this round, not off, rep still live.
            while started_ptr < N and wake_sorted[started_ptr] < t:
                started[wake_order[started_ptr]] = True
                started_ptr += 1
        act = np.flatnonzero(started & lanes.alive & lane_live)
        if act.size == 0:
            # No station can act; the channel is silent (an empty round is
            # SILENCE even when jammed) and only the stop check below can
            # change anything.
            if adaptive_adv:
                prev_outcome.fill(ADV_SILENCE)
            for rep in _check_stops(
                stop, rep_live, woken, succeeded, switched_off, k,
                stop_round, rep_completed, t,
            ):
                lane_live[rep * k : (rep + 1) * k] = False
            continue

        # 2. Decisions (lanes with local round >= 1).
        lanes.transmit.fill(False)
        lanes.payload.fill(0)
        if kind == "schedule":
            act = _decide_schedule(lanes, rng, act, prob_rows[0], horizon,
                                   wake, t, rep_of, switched_off)
        elif kind == "suniform":
            _decide_suniform(lanes, rng, act)
        elif kind == "global_clock":
            _decide_global_clock(lanes, rng, act, prob_rows[0], t)
        elif kind == "cd_aimd":
            _decide_cd_aimd(lanes, rng, act, prob_rows)
        else:
            _decide_adaptive(lanes, rng, act, prob_rows[ANK_ELECTION], white)
        transmitting = lanes.transmit[act]
        tx_lanes = act[transmitting]
        lanes.tx[tx_lanes] += 1
        if program.requires_listening:
            lanes.listen[act[~transmitting]] += 1

        # 3. Channel resolution per repetition: success iff exactly one
        # transmitter and the round is not jammed.
        jammed = jam_set is not None and t in jam_set
        counts = None
        if tx_lanes.size and (not jammed or need_outcome):
            tx_reps = rep_of[tx_lanes]
            counts = np.bincount(tx_reps, minlength=R)
        if counts is not None and not jammed:
            success_reps = np.flatnonzero(counts == 1)
            # tx_lanes ascends in lane order (= repetition-major), so the
            # winner of rep r sits at the first position with rep == r.
            winners = tx_lanes[np.searchsorted(tx_reps, success_reps)]
        else:
            success_reps = np.empty(0, dtype=np.int64)
            winners = np.empty(0, dtype=np.int64)
        if need_outcome:
            # The common outcome per repetition, RoundOutcome semantics:
            # a jammed round with any transmitter is a COLLISION (even
            # m == 1 — the winner is destroyed), a jammed empty round
            # stays SILENCE.
            if counts is None:
                outcome_rep = np.zeros(R, dtype=np.int64)
            elif jammed:
                outcome_rep = np.where(counts > 0, ADV_COLLISION, ADV_SILENCE)
            else:
                outcome_rep = np.where(
                    counts >= 2,
                    ADV_COLLISION,
                    np.where(counts == 1, ADV_SUCCESS, ADV_SILENCE),
                )
            if adaptive_adv:
                prev_outcome = outcome_rep

        # 4. Observations: first-success bookkeeping, then the machine's
        # symbol-driven transitions.
        if winners.size:
            new_successes = winners[lanes.fs[winners] == _INF]
            if new_successes.size:
                lanes.fs[new_successes] = t
                succeeded[rep_of[new_successes]] += 1

        lanes.sym.fill(0)
        lanes.sym[winners] = SYM_ACK
        if program.requires_listening and winners.size:
            hear_sym = np.zeros(R, dtype=np.int8)
            hear_sym[success_reps] = HEAR_SYMBOL_OF_PAYLOAD[
                lanes.payload[winners]
            ]
            listeners = act[
                ~lanes.transmit[act] & (hear_sym[rep_of[act]] != 0)
            ]
            lanes.sym[listeners] = hear_sym[rep_of[listeners]]
        if cd:
            # Non-success rounds deliver the common outcome to every
            # active lane (transmitting losers included); success rounds
            # map to 0 and keep their ack / heard-payload symbols.
            cd_sym = _CD_SYMBOL_OF_OUTCOME[outcome_rep[rep_of[act]]]
            hit = cd_sym != 0
            if hit.any():
                lanes.sym[act[hit]] = cd_sym[hit]

        if adaptive:
            _observe_adaptive(
                lanes, rng, act, listen_window,
                next_mode, ack_guard, parity_guard, t,
                lambda idx: _switch_off(idx, t),
            )
        elif kind == "cd_aimd":
            _observe_cd_aimd(
                lanes, act, next_mode, lambda idx: _switch_off(idx, t)
            )
        else:
            _observe_simple(
                lanes, act, kind, next_mode, t,
                winners, success_reps, rep_of,
                lambda idx: _switch_off(idx, t),
            )

        # 5. Stop conditions (after retirement, as the object engine).
        for rep in _check_stops(
            stop, rep_live, woken, succeeded, switched_off, k,
            stop_round, rep_completed, t,
        ):
            lane_live[rep * k : (rep + 1) * k] = False

    if phase:
        telemetry.count("compiled.rounds", t)
        phase.lap("compiled.step")

    # ---- materialise per-repetition results (object-engine view: only
    # stations woken by the stop round exist, ids in wake order).
    rounds_executed = np.where(rep_completed, stop_round, max_rounds)
    fs_list = lanes.fs.tolist()
    off_list = lanes.off.tolist()
    tx_list = lanes.tx.tolist()
    listen_list = lanes.listen.tolist()
    wake_list = wake.tolist()
    results = []
    protocol_name = getattr(spec.protocol_factory, "protocol_name", "")
    adversary_name = getattr(adversary, "name", "")
    for rep, seed in enumerate(seed_list):
        upto = int(rounds_executed[rep])
        base = rep * k
        count = int(
            np.searchsorted(wake[base : base + k], upto, side="right")
        )
        records = [
            StationRecord(
                station_id=i,
                wake_round=wake_list[base + i],
                first_success_round=(
                    None if fs_list[base + i] == _INF else fs_list[base + i]
                ),
                switch_off_round=(
                    None if off_list[base + i] == _INF else off_list[base + i]
                ),
                transmissions=tx_list[base + i],
                listening_slots=listen_list[base + i],
            )
            for i in range(count)
        ]
        results.append(
            RunResult(
                records=records,
                rounds_executed=upto,
                completed=bool(rep_completed[rep]),
                stop=stop,
                trace=None,
                seed=seed,
                protocol_name=protocol_name,
                adversary_name=adversary_name,
            )
        )
    if phase:
        phase.lap("compiled.materialize")
    return results


def _check_stops(
    stop: StopCondition,
    rep_live: np.ndarray,
    woken: np.ndarray,
    succeeded: np.ndarray,
    switched_off: np.ndarray,
    k: int,
    stop_round: np.ndarray,
    rep_completed: np.ndarray,
    t: int,
) -> list[int]:
    """Retire repetitions whose stop condition is met; return their ids."""
    if stop is StopCondition.FIRST_SUCCESS:
        met = succeeded >= 1
    elif stop is StopCondition.ALL_SUCCEEDED:
        met = (woken >= k) & (succeeded >= k)
    else:
        met = (woken >= k) & (switched_off >= k)
    done = rep_live & met
    if not done.any():
        return []
    idx = np.flatnonzero(done)
    rep_live[idx] = False
    stop_round[idx] = t
    rep_completed[idx] = True
    return idx.tolist()


# ------------------------------------------------------------ decide rules


def _decide_schedule(
    lanes: _Lanes,
    rng: _LaneRng,
    act: np.ndarray,
    row: np.ndarray,
    horizon: Optional[int],
    wake: np.ndarray,
    t: int,
    rep_of: np.ndarray,
    switched_off: np.ndarray,
) -> np.ndarray:
    """ScheduleProtocol.decide: horizon switch-off, then a gated draw.

    Returns the still-active subset (horizon retirees neither transmit nor
    listen nor observe this round, exactly as ``Station.decide``).
    """
    local = t - wake[act]
    if horizon is not None:
        done = local > horizon
        if done.any():
            retired = act[done]
            lanes.alive[retired] = False
            lanes.off[retired] = t
            np.add.at(switched_off, rep_of[retired], 1)
            act = act[~done]
            local = local[~done]
    p = row[local - 1]
    drawers = act[p > 0.0]
    if drawers.size:
        u = rng.uniform(drawers)
        hit = drawers[u < p[p > 0.0]]
        lanes.transmit[hit] = True
        lanes.payload[hit] = PAYLOAD_DATA
    return act


def _decide_suniform(lanes: _Lanes, rng: _LaneRng, act: np.ndarray) -> None:
    hit = act[_sawtooth_step(lanes, rng, act)]
    lanes.transmit[hit] = True
    lanes.payload[hit] = PAYLOAD_DATA


def _decide_global_clock(
    lanes: _Lanes, rng: _LaneRng, act: np.ndarray, wake_row: np.ndarray, t: int
) -> None:
    # Global round == wake + local == t for every station, so the whole
    # batch shares the parity split.
    if t % 2 == 1:
        # Odd: one DecreaseSlowly wake-up step each; a hit is a beacon
        # carrying the probability used.
        p = wake_row[lanes.counter[act]]
        lanes.counter[act] += 1
        u = rng.uniform(act)
        hit = act[u < p]
        lanes.transmit[hit] = True
        lanes.payload[hit] = PAYLOAD_BEACON
        lanes.p_used[act] = p
    else:
        # Even: data round at the adopted probability; silent (and
        # drawless) until a beacon has been heard.
        adopted = lanes.adopted[act]
        drawers = act[adopted >= 0.0]
        if drawers.size:
            u = rng.uniform(drawers)
            hit = drawers[u < lanes.adopted[drawers]]
            lanes.transmit[hit] = True
            lanes.payload[hit] = PAYLOAD_DATA


def _decide_cd_aimd(
    lanes: _Lanes, rng: _LaneRng, act: np.ndarray, prob_rows: np.ndarray
) -> None:
    # CdAimdProtocol.decide draws one uniform per active round
    # unconditionally (rng.random() < 1/W), so every act lane consumes
    # exactly one buffered draw at its mode's lattice probability.
    p = prob_rows[lanes.mode[act], 0]
    u = rng.uniform(act)
    hit = act[u < p]
    lanes.transmit[hit] = True
    lanes.payload[hit] = PAYLOAD_DATA


def _decide_adaptive(
    lanes: _Lanes,
    rng: _LaneRng,
    act: np.ndarray,
    election_row: np.ndarray,
    white: np.ndarray,
) -> None:
    modes = lanes.mode[act]
    election = act[modes == ANK_ELECTION]
    if election.size:
        p = election_row[lanes.counter[election]]
        lanes.counter[election] += 1
        u = rng.uniform(election)
        hit = election[u < p]
        lanes.transmit[hit] = True
        lanes.payload[hit] = PAYLOAD_DATA
    dmode = act[modes >= ANK_MEMBER]
    if dmode.size == 0:
        return
    # The shared virtual clock advances first (first D round has tc == 1).
    lanes.tc[dmode] += 1
    tc = lanes.tc[dmode]
    odd = (tc & 1) == 1
    is_member = lanes.mode[dmode] == ANK_MEMBER
    member_odd = dmode[odd & is_member]
    if member_odd.size:
        hit = member_odd[_sawtooth_step(lanes, rng, member_odd)]
        lanes.transmit[hit] = True
        lanes.payload[hit] = PAYLOAD_DATA
    even = dmode[~odd]
    if even.size:
        even_white = white[lanes.tc[even]]
        probing = even[even_white]
        lanes.transmit[probing] = True
        lanes.payload[probing] = PAYLOAD_PROBE
        announcing = even[~even_white & (lanes.mode[even] == ANK_LEADER)]
        lanes.transmit[announcing] = True
        lanes.payload[announcing] = PAYLOAD_DMODE


# ----------------------------------------------------------- observe rules


def _observe_simple(
    lanes: _Lanes,
    act: np.ndarray,
    kind: str,
    next_mode: np.ndarray,
    t: int,
    winners: np.ndarray,
    success_reps: np.ndarray,
    rep_of: np.ndarray,
    switch_off,
) -> None:
    """Single-mode machines: the only transitions are ack-driven."""
    if kind == "global_clock" and success_reps.size:
        # Adopt the winning beacon's announced probability.  The winner's
        # p_used is only meaningful on odd (beacon) rounds, and only
        # beacon payloads reach listeners as SYM_HEAR_BEACON.
        beacon_reps = success_reps[
            lanes.payload[winners] == PAYLOAD_BEACON
        ]
        if beacon_reps.size:
            beacon_p = np.zeros(rep_of.max() + 1 if rep_of.size else 1)
            beacon_winners = winners[lanes.payload[winners] == PAYLOAD_BEACON]
            beacon_p[beacon_reps] = lanes.p_used[beacon_winners]
            hearers = act[
                ~lanes.transmit[act]
                & np.isin(rep_of[act], beacon_reps)
            ]
            lanes.adopted[hearers] = beacon_p[rep_of[hearers]]
    if winners.size and next_mode[0, SYM_ACK] == OFF:
        switch_off(winners)


def _observe_cd_aimd(
    lanes: _Lanes,
    act: np.ndarray,
    next_mode: np.ndarray,
    switch_off,
) -> None:
    """MIMD window walk: a plain (mode, symbol) gather, no guards.

    An ack switches off (the early return in ``CdAimdProtocol.observe``
    means ack beats the channel update); SYM_CD_COLLISION climbs the
    window lattice, SYM_CD_SILENCE descends it, heard-payload symbols
    (success rounds) hold the operating point via identity columns.
    """
    m0 = lanes.mode[act]
    target = next_mode[m0, lanes.sym[act]]
    moved = target != m0
    if not moved.any():
        return
    changed = act[moved]
    dst = target[moved]
    to_off = changed[dst == OFF]
    if to_off.size:
        switch_off(to_off)
    surviving = dst != OFF
    lanes.mode[changed[surviving]] = dst[surviving]


def _observe_adaptive(
    lanes: _Lanes,
    rng: _LaneRng,
    act: np.ndarray,
    listen_window: int,
    next_mode: np.ndarray,
    ack_guard: np.ndarray,
    parity_guard: np.ndarray,
    t: int,
    switch_off,
) -> None:
    mode0 = lanes.mode[act]

    # WAITING: counter-driven window bookkeeping (no symbol transition).
    waiting = act[mode0 == ANK_WAITING]
    if waiting.size:
        lanes.window_rounds[waiting] += 1
        sym_w = lanes.sym[waiting]
        # "Heard a message" means a successful payload — the CD outcome
        # symbols (silence/collision) are not messages.
        heard = (sym_w >= SYM_HEAR_DATA) & (sym_w <= SYM_HEAR_BEACON)
        lanes.saw_message[waiting[heard]] = True
        lanes.saw_probe[waiting[sym_w == SYM_HEAR_PROBE]] = True
        full = waiting[lanes.window_rounds[waiting] == listen_window]
        if full.size:
            join = full[
                ~lanes.saw_message[full] | lanes.saw_probe[full]
            ]
            _reset_waiting(lanes, full)
            if join.size:
                lanes.mode[join] = ANK_ELECTION
                lanes.counter[join] = 0

    # ELECTION / MEMBER / LEADER: the (mode, symbol) table, with the two
    # guards the pseudocode needs (ack payload kind, member tc parity).
    rest = act[mode0 != ANK_WAITING]
    if rest.size == 0:
        return
    m0 = lanes.mode[rest]
    sym = lanes.sym[rest]
    target = next_mode[m0, sym].astype(np.int8)
    is_ack = sym == SYM_ACK
    if is_ack.any():
        guard = ack_guard[m0]
        vetoed = is_ack & (guard != PAYLOAD_ANY) & (lanes.payload[rest] != guard)
        target[vetoed] = m0[vetoed]
    control = (sym == SYM_HEAR_PROBE) | (sym == SYM_HEAR_DMODE)
    if control.any():
        vetoed = control & parity_guard[m0] & ((lanes.tc[rest] & 1) == 0)
        target[vetoed] = m0[vetoed]
    moved = target != m0
    if not moved.any():
        return
    changed = rest[moved]
    src = m0[moved]
    dst = target[moved]

    # Exit action: leaving the election returns the unconsumed prefetched
    # uniforms, so the next draw kind starts at the exact stream position.
    leaving_election = changed[src == ANK_ELECTION]
    if leaving_election.size:
        rng.rewind(leaving_election)

    # Entry actions per target mode.
    to_off = changed[dst == OFF]
    if to_off.size:
        switch_off(to_off)
    to_member = changed[dst == ANK_MEMBER]
    if to_member.size:
        lanes.tc[to_member] = 0
        _init_sawtooth(lanes, to_member)
    to_leader = changed[dst == ANK_LEADER]
    if to_leader.size:
        lanes.tc[to_leader] = 0
    to_waiting = changed[dst == ANK_WAITING]
    if to_waiting.size:
        _reset_waiting(lanes, to_waiting)
    surviving = dst != OFF
    lanes.mode[changed[surviving]] = dst[surviving]


class CompiledSimulator:
    """Single-run facade over :func:`run_compiled_batch`.

    Mirrors the constructor-free engine surface of dispatch: build from a
    spec, call :meth:`run`.  The batch path with one repetition *is* the
    single-run semantics (per-repetition state never crosses lanes).
    """

    def __init__(self, spec: RunSpec, program: Optional[CompiledProgram] = None):
        self.spec = spec
        self.program = program if program is not None else compile_spec(spec)

    def run(self) -> RunResult:
        (result,) = run_compiled_batch(
            self.spec, seeds=[self.spec.seed], program=self.program
        )
        return result
