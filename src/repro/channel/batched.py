"""Batched vectorised engine: R repetitions in one set of numpy passes.

Every experiment in this repository is a Monte Carlo estimate —
``repeat_schedule_runs`` / ``sweep_schedule`` execute hundreds to
thousands of statistically independent repetitions of the same
:class:`~repro.core.spec.RunSpec`.  The single-run
:class:`~repro.channel.vectorized.VectorizedSimulator` already samples
each station's transmission set in one shot, but still pays per-run
overhead: its own construction, its own hazard-table slice, and — the
actual hot path — a pure-Python ``while`` sweep over every transmission
event to resolve collisions.  :func:`run_batch` fuses all R repetitions
into one ``(rep, station)`` batch:

1. wake schedules and Poisson transmission points are drawn per
   repetition from that repetition's own seeded generators (the draw
   sequence is *exactly* the sequential engine's, which is what makes the
   results byte-identical), then concatenated into flat batch arrays;
2. collisions are resolved for the whole batch at once with array-segment
   reductions: events are sorted by ``(rep, global_round)``, per-round
   attempt counts come from run-length boundaries, and singleton rounds —
   the successes — fall out of a ``counts == 1`` mask;
3. the acknowledgement-triggered switch-off (a success *removes the
   winner's future events*, which can turn a later collision into a new
   singleton) is handled by an iterative fixpoint: recompute counts only
   for repetitions whose switch-off set changed, until nothing changes.
   Deaths are monotone (a station's estimated switch-off round only moves
   earlier, and never before its true one), so the fixpoint converges to
   exactly the sequential sweep's outcome; typical schedules settle in a
   handful of passes.

Streaming execution
-------------------

Millions of repetitions cannot hold the full (rep, round, station) event
space at once, so :func:`run_batch` executes a deterministic
:class:`~repro.engine.plan.TilePlan`: repetitions stream through in
**rep tiles** (each tile runs the whole kernel on its own slice of the
seed list — per-rep RNG is independent, so this is trivially exact), and
inside a tile the ack-switch-off fixpoint can sweep the sorted event
stream in **round windows**, carrying the ``win`` frontier from window
to window (see :func:`_ack_fixpoint`).  Tile sizes come from the
planner's bytes-per-(rep·round·station) cost model under
``--memory-budget``, or explicitly via ``tile_reps`` / ``tile_rounds``;
with no constraint the plan is the single monolithic batch, exactly the
historical behaviour.  An allocation that would exceed memory fails fast
as :class:`~repro.engine.plan.BatchMemoryError` naming the offending
spec field and an admitting budget, instead of letting numpy abort.

Exactness contract
------------------

``run_batch(spec, seeds=[s0, ..., s(R-1)])`` returns ``RunResult``s
byte-identical to ``[execute(spec.with_seed(s)) for s in seeds]`` on the
vectorised engine — same wake draws, same transmission samples, same
records, metrics, completion flags and stop rounds, **at any tile
size**.  The property suites ``tests/test_batched.py`` and
``tests/test_plan.py`` fuzz this equality across the cross-engine config
space (stochastic and deterministic schedules, jamming, the no-ack
switch-off variant, every stop condition) and across random
tile-rep/round-window sizes.

Admissibility is the vectorised engine's: non-adaptive schedule,
oblivious wake adversary, no stateful jammer, no trace, ACK feedback.
Route through :func:`repro.engine.dispatch.execute_batch` to get
transparent per-run fallback for everything else.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Optional

import numpy as np

from repro.adversary.base import WakeSchedule
from repro.channel.feedback import FeedbackModel
from repro.channel.results import RunResult, StopCondition
from repro.channel.vectorized import check_prob_table, sample_station_events
from repro.core.protocol import ProbabilitySchedule
from repro.core.spec import RunSpec
from repro.core.station import StationRecord
from repro.telemetry import registry as telemetry

__all__ = ["run_batch"]

#: "Never happens" sentinel for round numbers (first success / switch-off).
_INF = np.iinfo(np.int64).max


def _resolve_seeds(
    spec: RunSpec, n_reps: Optional[int], seeds: Optional[Sequence[int]]
) -> list[int]:
    if seeds is None:
        if n_reps is None:
            raise ValueError("run_batch needs n_reps or an explicit seed list")
        if spec.seed is None:
            raise ValueError(
                "run_batch(spec, n_reps) derives per-rep seeds from spec.seed; "
                "set spec.seed or pass seeds explicitly"
            )
        return [spec.seed + r for r in range(n_reps)]
    seed_list = [int(s) for s in seeds]
    if n_reps is not None and n_reps != len(seed_list):
        raise ValueError(
            f"n_reps={n_reps} disagrees with len(seeds)={len(seed_list)}"
        )
    return seed_list


def _rep_generators(seed: int) -> tuple[np.random.Generator, np.random.Generator]:
    """The sequential engine's (adversary, station) generator pair.

    :class:`~repro.util.rng.RngFactory` hands these out as two successive
    ``spawn(1)`` children of ``SeedSequence(seed)``; one ``spawn(2)`` call
    yields the same two children (spawn keys ``(0,)`` and ``(1,)``) with
    half the per-repetition SeedSequence overhead, keeping the streams —
    and therefore the batch results — byte-identical.
    """
    adversary_child, station_child = np.random.SeedSequence(seed).spawn(2)
    return (
        np.random.Generator(np.random.PCG64(adversary_child)),
        np.random.Generator(np.random.PCG64(station_child)),
    )


def _map_points_to_rounds(full_cum: np.ndarray, flat: np.ndarray) -> np.ndarray:
    """Exact ``np.searchsorted(full_cum, flat, side="right")``, faster.

    Binary search pays ~90 ns per point; a batch has millions.  A uniform
    grid over the hazard axis precomputes, per grid bucket, the smallest
    insertion index of any value in the bucket; each point then starts at
    its bucket's index and walks forward at most ``max bucket span`` steps
    (whole-array compare-and-add passes).  A trailing backward pass
    corrects the rare float-rounding overshoot of the bucket computation,
    so the result is exactly the binary search's for every input.  Tables
    whose hazard mass concentrates in few buckets (span > 32) — and small
    batches, where the grid setup doesn't amortise — fall back to plain
    ``searchsorted``.
    """
    n = int(full_cum.shape[0])
    total = float(full_cum[-1]) if n else 0.0
    if flat.size < 65536 or n < 2 or not total > 0.0:
        return np.searchsorted(full_cum, flat, side="right")
    m = 1 << ((n - 1).bit_length() + 1)  # ~2-4 buckets per round
    edges = np.arange(m, dtype=np.float64) * (total / m)
    lo = np.searchsorted(full_cum, edges, side="right")
    spans = np.diff(lo)
    max_span = int(spans.max()) if spans.size else 0
    if max_span > 32:
        return np.searchsorted(full_cum, flat, side="right")
    bucket = np.minimum((flat * (m / total)).astype(np.int64), m - 1)
    np.maximum(bucket, 0, out=bucket)
    idx = lo[bucket]
    cum_pad = np.append(full_cum, np.inf)
    # One whole-array pass finds the points still left of their round;
    # subsequent passes touch only the shrinking unresolved subset.
    active = np.flatnonzero(cum_pad[idx] <= flat)
    for _ in range(max_span + 2):
        if active.size == 0:
            break
        idx[active] += 1
        still = cum_pad[idx[active]] <= flat[active]
        active = active[still]
    else:  # pragma: no cover - loop bound is exact by construction
        return np.searchsorted(full_cum, flat, side="right")
    behind = np.flatnonzero(
        (idx > 0) & (full_cum[np.maximum(idx, 1) - 1] > flat)
    )
    while behind.size:
        idx[behind] -= 1
        sub = idx[behind]
        still = (sub > 0) & (full_cum[np.maximum(sub, 1) - 1] > flat[behind])
        behind = behind[still]
    return idx


def _check_batchable(spec: RunSpec) -> None:
    """Defensive admissibility check (dispatch performs the routed one).

    Each message names the spec field that tripped, so a driver that
    bypassed dispatch sees exactly which capability to change.
    """
    if not spec.is_schedule_run:
        raise TypeError(
            "run_batch requires a probability-schedule spec: spec.protocol is "
            f"a factory ({spec.display_label!r}); use run_compiled_batch or "
            "per-run execute() for stateful protocols"
        )
    if not isinstance(spec.adversary, WakeSchedule):
        raise TypeError(
            "run_batch requires an oblivious WakeSchedule: spec.adversary is "
            f"{type(spec.adversary).__name__}, which may react to channel history"
        )
    if spec.jammer is not None:
        raise ValueError(
            "run_batch does not take jammer objects: spec.jammer is "
            f"{type(spec.jammer).__name__}; express oblivious jamming as "
            "spec.jam_rounds instead"
        )
    if spec.record_trace:
        raise ValueError(
            "run_batch keeps no event log: spec.record_trace is True; "
            "use the object engine to record traces"
        )
    if spec.feedback is not FeedbackModel.ACK_ONLY:
        raise ValueError(
            "run_batch only models ACK feedback: spec.feedback is "
            f"{spec.feedback.value!r}"
        )
    if spec.faults is not None and spec.faults.energy_budget is not None:
        raise ValueError(
            "run_batch does not model energy budgets: "
            "spec.faults.energy_budget is set; use the object engine"
        )


def _segment_singletons(
    keys: np.ndarray, jammed: np.ndarray
) -> np.ndarray:
    """Positions (into ``keys``) of non-jammed singleton segments.

    ``keys`` is the sorted ``(rep, global_round)`` composite key; a
    segment is one channel round of one repetition, and a singleton
    segment is a round with exactly one attempt — a success unless jammed.
    """
    if keys.size == 0:
        return np.empty(0, dtype=np.int64)
    first = np.empty(keys.size, dtype=bool)
    first[0] = True
    np.not_equal(keys[1:], keys[:-1], out=first[1:])
    starts = np.flatnonzero(first)
    counts = np.diff(np.append(starts, keys.size))
    singles = starts[counts == 1]
    return singles[~jammed[singles]]


def _ack_fixpoint(
    win: np.ndarray,
    s: np.ndarray,
    g: np.ndarray,
    gk: np.ndarray,
    rep_of: np.ndarray,
    jammed: np.ndarray,
    n_reps: int,
    k: int,
) -> tuple[np.ndarray, int]:
    """Iterate the ack-switch-off fixpoint over one event (sub)stream.

    ``win`` carries the frontier *in*: events whose station already won
    at an earlier round (a previous window's converged result) are
    invalid from the first pass, exactly as if the whole stream had been
    swept at once.  A win at round t removes the winner's events after t,
    which can create new singletons at later rounds of the same
    repetition; deaths are monotone (estimates only move earlier and
    never before the true switch-off), so iterating over the repetitions
    whose death set changed reproduces the sequential sweep exactly.
    Windowing is sound for the same reason: a win found in a later
    window has a round past every earlier window's rounds, so it can
    never invalidate an event — or create a singleton — in a window that
    already converged.  Returns the advanced frontier and the pass count.
    """
    # Events are sorted by repetition, so after the first whole-stream
    # pass each iteration re-counts only the changed repetitions'
    # contiguous event segments.
    rep_bounds = np.searchsorted(rep_of, np.arange(n_reps + 1))
    active_reps: Optional[np.ndarray] = None  # None = every repetition
    # Each productive pass strictly lowers at least one win estimate, and
    # every estimate is one of the event rounds, so the pass count is
    # bounded by the event count (plus the final no-change pass).
    passes = 1
    for passes in range(1, int(g.size) + 3):
        if active_reps is None:
            sl_s, sl_g, sl_gk, sl_j = s, g, gk, jammed
        else:
            if active_reps.size == 0:
                break
            idx = np.concatenate(
                [
                    np.arange(rep_bounds[r], rep_bounds[r + 1])
                    for r in active_reps
                ]
            )
            sl_s, sl_g, sl_gk, sl_j = s[idx], g[idx], gk[idx], jammed[idx]
        valid = sl_g <= win[sl_s]
        sv = sl_s[valid]
        gv = sl_g[valid]
        singles = _segment_singletons(sl_gk[valid], sl_j[valid])
        new_win = win.copy()
        np.minimum.at(new_win, sv[singles], gv[singles])
        changed = np.flatnonzero(new_win != win)
        win = new_win
        active_reps = np.unique(changed // k)
    else:  # pragma: no cover - deaths strictly decrease, so unreachable
        raise RuntimeError("batched ack fixpoint failed to converge")
    return win, passes


def run_batch(
    spec: RunSpec,
    n_reps: Optional[int] = None,
    seeds: Optional[Sequence[int]] = None,
    *,
    tile_reps: Optional[int] = None,
    tile_rounds: Optional[int] = None,
    memory_budget: Optional[object] = None,
) -> list[RunResult]:
    """Execute ``spec`` for every seed through memory-bounded tiles.

    Args:
        spec: a vectorised-admissible run description (see module docs).
        n_reps: repetition count; seeds default to ``spec.seed + r``
            (the harness's repetition layout).
        seeds: explicit per-repetition seeds (overrides ``n_reps``-derived
            ones; both may be given if consistent).
        tile_reps: repetitions per streaming tile (None = the process
            default, else derived from the memory budget, else all).
        tile_rounds: rounds per resolution window inside a tile (None =
            the process default, else the whole horizon).
        memory_budget: bytes (or a ``"4G"``-style string) bounding one
            tile's estimated working set; None = the process default set
            by the CLI's ``--memory-budget``.

    Returns:
        One :class:`RunResult` per seed, in order, byte-identical to
        sequential ``execute(spec.with_seed(seed))`` calls — for every
        tile size.

    Raises:
        BatchMemoryError: the budget admits no tile, or a kernel
            allocation actually failed (numpy's bare ``MemoryError`` is
            wrapped with the offending spec field and an admitting
            budget).
    """
    _check_batchable(spec)
    seed_list = _resolve_seeds(spec, n_reps, seeds)
    R = len(seed_list)
    if R == 0:
        return []
    from repro.engine.plan import (
        BatchMemoryError,
        build_plan,
        oversized_batch_message,
    )

    plan = build_plan(
        spec,
        R,
        memory_budget=memory_budget,
        tile_reps=tile_reps,
        tile_rounds=tile_rounds,
    )
    if telemetry.enabled():
        telemetry.count("batched.batches")
        telemetry.count("batched.reps", R)
        telemetry.observe("batched.batch_reps", R)

    # One shared probability/hazard table for every tile (the PR-3 LRU);
    # each repetition slices the prefix its own wake draw allows.
    from repro.engine.cache import cumulative_hazard, probability_table

    max_rounds = spec.resolve_horizon()
    full_table = probability_table(spec.schedule, max_rounds)
    check_prob_table(spec.schedule, full_table, max_rounds)
    full_cum = cumulative_hazard(spec.schedule, max_rounds)

    results: list[RunResult] = []
    for lo, hi in plan.rep_slices():
        with telemetry.span("tile.run"):
            if telemetry.enabled():
                telemetry.count("tile.runs")
                telemetry.count("tile.reps", hi - lo)
            try:
                results.extend(
                    _run_tile(
                        spec, seed_list[lo:hi], full_cum, plan.tile_rounds
                    )
                )
            except BatchMemoryError:
                raise
            except MemoryError as error:
                raise BatchMemoryError(
                    oversized_batch_message(spec, hi - lo)
                ) from error
    return results


def _run_tile(
    spec: RunSpec,
    seed_list: list[int],
    full_cum: np.ndarray,
    tile_rounds: Optional[int],
) -> list[RunResult]:
    """One rep tile: the full kernel over ``seed_list``'s repetitions.

    Exactly the pre-streaming monolithic body — per-rep draws, one sort,
    segment-reduction resolution, stop/attempt/materialise — except that
    the ack-switch-off fixpoint optionally sweeps the sorted event
    stream in ``tile_rounds``-round windows, carrying the ``win``
    frontier forward (see :func:`_ack_fixpoint` for why that is exact).
    """
    R = len(seed_list)
    phase = telemetry.timer()

    k = spec.k
    schedule = spec.schedule
    adversary = spec.adversary
    ack = spec.switch_off_on_ack
    stop = spec.stop
    max_rounds = spec.resolve_horizon()
    sched_horizon = schedule.horizon()

    # --- per-repetition draws (seed-exact, so they stay per-rep calls;
    # everything after this loop is whole-batch array work) --------------
    # Schedules without a sample_rounds override draw nothing but the
    # Poisson counts and uniform points per repetition, so the
    # searchsorted / dedup passes can run once over the whole batch.
    direct = (
        type(schedule).sample_rounds is not ProbabilitySchedule.sample_rounds
    )
    wake_all = np.empty((R, k), dtype=np.int64)
    if direct:
        station_parts: list[np.ndarray] = []
        global_parts: list[np.ndarray] = []
        for r, seed in enumerate(seed_list):
            adversary_rng, station_rng = _rep_generators(seed)
            wake = np.asarray(
                adversary.wake_rounds(k, adversary_rng), dtype=np.int64
            )
            if wake.shape != (k,):
                raise ValueError("adversary produced a malformed wake schedule")
            max_local = int(max_rounds - wake.min())
            if sched_horizon is not None:
                max_local = min(max_local, sched_horizon)
            max_local = max(max_local, 1)
            stations, local_rounds = sample_station_events(
                station_rng, schedule, k, full_cum[:max_local], max_local
            )
            wake_all[r] = wake
            station_parts.append(stations + np.int64(r) * k)
            global_parts.append(local_rounds + wake[stations])
        ev_station = (
            np.concatenate(station_parts)
            if station_parts
            else np.empty(0, dtype=np.int64)
        )
        ev_global = (
            np.concatenate(global_parts)
            if global_parts
            else np.empty(0, dtype=np.int64)
        )
    else:
        counts_all = np.zeros((R, k), dtype=np.int64)
        flat_parts: list[np.ndarray] = []
        for r, seed in enumerate(seed_list):
            adversary_rng, station_rng = _rep_generators(seed)
            wake = np.asarray(
                adversary.wake_rounds(k, adversary_rng), dtype=np.int64
            )
            if wake.shape != (k,):
                raise ValueError("adversary produced a malformed wake schedule")
            max_local = int(max_rounds - wake.min())
            if sched_horizon is not None:
                max_local = min(max_local, sched_horizon)
            max_local = max(max_local, 1)
            wake_all[r] = wake
            total = float(full_cum[max_local - 1])
            if total <= 0.0:
                continue  # no transmissions: the sequential path draws nothing
            counts = station_rng.poisson(total, size=k)
            counts_all[r] = counts
            flat_parts.append(
                station_rng.uniform(0.0, total, size=int(counts.sum()))
            )
        # One batch-wide binary search: each point was drawn on its own
        # repetition's prefix of the cumulative-hazard axis, so mapping it
        # against the full table lands on the same round.
        flat = (
            np.concatenate(flat_parts)
            if flat_parts
            else np.empty(0, dtype=float)
        )
        local = _map_points_to_rounds(full_cum, flat)
        local += 1
        ev_station = None  # assembled straight into keys below
    if phase:
        phase.lap("batched.draws")

    # --- flat batch event stream, sorted by (rep, global round) ---------
    # Composite key: rep | global_round | station in power-of-two bit
    # fields, so the decompose after sorting is shifts and masks rather
    # than integer division.  The round field leaves room for the largest
    # possible global round (local ≤ max_rounds - min wake, plus any
    # wake), so past-horizon events stay inside their repetition's key
    # space until the post-sort mask drops them.
    max_g = int(max_rounds) + int(wake_all.max()) + 1
    sp = max_g.bit_length()
    kp = (k - 1).bit_length()
    key_bits = (R - 1).bit_length() + sp + kp
    if key_bits > 62:  # pragma: no cover - absurd sizes
        raise ValueError(
            "batch composite keys would overflow int64; reduce the batch size"
        )
    # Narrow keys halve the memory traffic of the sort and of every
    # whole-batch pass; typical batches (R=1000, k=64) need < 28 bits.
    key_dtype = np.int32 if key_bits <= 31 else np.int64
    if ev_station is not None:
        # Direct-path events: the per-rep sampling loop already produced
        # flat (rep * k + station, global_round) arrays.
        key = (
            ((ev_station // k) << np.int64(sp)) + ev_global
        ) << np.int64(kp) | (ev_station % k)
        key = key.astype(key_dtype, copy=False)
    else:
        # Poisson-path events: the key decomposes into a per-(rep,
        # station) base — ((rep << sp) + wake) << kp | station — plus
        # local << kp, so per-event assembly is one repeat and one add.
        base = (
            (np.arange(R, dtype=np.int64) << np.int64(sp))[:, None] + wake_all
        ) << np.int64(kp) | np.arange(k, dtype=np.int64)[None, :]
        key = np.repeat(
            base.reshape(-1).astype(key_dtype, copy=False),
            counts_all.reshape(-1),
        )
        local = local.astype(key_dtype, copy=False)
        local <<= kp
        key += local
    # One sort both orders the sweep and puts duplicate (station, round)
    # samples side by side for the dedup mask (the direct path
    # pre-dedupes; the mask is then a no-op).  Past-horizon events are
    # dropped by the same mask.
    if phase:
        phase.lap("batched.key_build")
    key.sort()
    gk = key >> kp  # (rep, global_round) composite segment key
    g = gk & ((1 << sp) - 1)
    if key.size:
        m = np.empty(key.size, dtype=bool)
        m[0] = True
        np.not_equal(key[1:], key[:-1], out=m[1:])
        m &= g <= max_rounds
        key = key[m]
        gk = gk[m]
        g = g[m]
    ev_rep = gk >> sp
    s = ev_rep * k + (key & ((1 << kp) - 1))
    if spec.jam_rounds:
        ev_jammed = np.isin(g, np.asarray(spec.jam_rounds, dtype=np.int64))
    else:
        ev_jammed = np.zeros(g.size, dtype=bool)
    # Oblivious faults lower as post-resolution outcome rewrites: a fault
    # round can carry no *observed* success (noise corrupts the slot; ack
    # loss keeps the schedule-following winner contending), which under
    # schedule semantics is exactly the jammed-round treatment.  Fault
    # rounds are per repetition (each rep draws its own plan from its own
    # seed), so membership is tested on the (rep, round) composite key.
    ev_noise: Optional[np.ndarray] = None
    ev_fault: Optional[np.ndarray] = None
    ev_dead = ev_jammed
    if spec.faults is not None:
        fault_parts: list[np.ndarray] = []
        noise_parts: list[np.ndarray] = []
        with telemetry.span("fault.plan"):
            for r, seed in enumerate(seed_list):
                fault_plan = spec.faults.plan(seed, max_rounds)
                rep_base = np.int64(r) << np.int64(sp)
                fault_parts.append(rep_base + fault_plan.fault_rounds)
                noise_parts.append(rep_base + fault_plan.noise_rounds)
        fault_keys = np.concatenate(fault_parts)
        noise_keys = np.concatenate(noise_parts)
        ev_fault = np.isin(gk, fault_keys)
        ev_noise = np.isin(gk, noise_keys)
        ev_dead = ev_jammed | ev_fault
    if phase:
        phase.lap("batched.sort")
        telemetry.count("batched.events", int(key.size))
        if ev_station is not None:
            draw_bytes = ev_station.nbytes + ev_global.nbytes
        else:
            draw_bytes = flat.nbytes + local.nbytes + counts_all.nbytes
        telemetry.gauge_max(
            "tile.working_set_bytes.peak",
            key.nbytes
            + gk.nbytes
            + g.nbytes
            + ev_rep.nbytes
            + s.nbytes
            + ev_jammed.nbytes
            + wake_all.nbytes
            + draw_bytes,
        )

    # --- collision resolution: segment reductions + ack fixpoint --------
    # win[rep*k + station] = the station's first successful round (_INF =
    # never).  Under ack semantics this is also its switch-off round.
    win = np.full(R * k, _INF, dtype=np.int64)
    passes = 1
    if not ack or stop is StopCondition.FIRST_SUCCESS:
        # Single counting pass.  Without switch-off feedback the live set
        # never changes; under FIRST_SUCCESS the run ends at the first
        # success, so no ack can have removed events before any round the
        # result reports (everything past the stop round is masked below).
        singles = _segment_singletons(gk, ev_dead)
        np.minimum.at(win, s[singles], g[singles])
    else:
        # The fixpoint's transient copies (valid mask, filtered slices,
        # win snapshots) scale with the events it sweeps; bounding them is
        # what horizon windows are for.  A window only ever *removes*
        # events at rounds past every earlier window, so sweeping windows
        # in ascending round order with the carried ``win`` frontier is
        # exact (see _ack_fixpoint).
        n_windows = 1
        if tile_rounds is not None and tile_rounds < max_rounds:
            n_windows = (int(max_rounds) - 1) // tile_rounds + 1
        if n_windows <= 1 or key.size == 0:
            win, passes = _ack_fixpoint(
                win, s, g, gk, ev_rep, ev_dead, R, k
            )
        else:
            # Stable sort on the window index keeps each window's events
            # in (rep, round) order, so segment keys stay contiguous.
            widx = (g - 1) // tile_rounds
            order = np.argsort(widx, kind="stable")
            bounds = np.searchsorted(widx[order], np.arange(n_windows + 1))
            passes = 0
            for w in range(n_windows):
                idx = order[bounds[w] : bounds[w + 1]]
                if idx.size == 0:
                    continue
                win, w_passes = _ack_fixpoint(
                    win, s[idx], g[idx], gk[idx], ev_rep[idx],
                    ev_dead[idx], R, k,
                )
                passes += w_passes
            passes = max(passes, 1)
            if phase:
                telemetry.count("tile.windows", n_windows)
    if phase:
        phase.lap("batched.resolve")
        telemetry.count("batched.fixpoint_passes", passes)

    # --- stop conditions, per repetition --------------------------------
    fs = win.reshape(R, k)
    if stop is StopCondition.FIRST_SUCCESS:
        t_stop = fs.min(axis=1)
    elif stop is StopCondition.ALL_SWITCHED_OFF and not ack:
        # Without acks a station keeps transmitting until its schedule
        # horizon runs out; the sweep consumes every event (no early stop).
        t_stop = np.full(R, _INF, dtype=np.int64)
    else:
        # ALL_SUCCEEDED, or ALL_SWITCHED_OFF under ack semantics: the run
        # stops at the k-th distinct first success.
        all_won = (fs < _INF).all(axis=1)
        t_stop = np.where(all_won, np.where(fs < _INF, fs, 0).max(axis=1), _INF)

    # Successes after the stop round were never observed by the sweep.
    fs_rep = np.where(fs <= t_stop[:, None], fs, _INF)

    # Attempts: every event up to the stop round from a still-live station
    # (under ack, a station's events end at its own first success).
    cutoff = t_stop[ev_rep]
    if ack:
        cutoff = np.minimum(cutoff, win[s])
    attempts = np.bincount(s[g <= cutoff], minlength=R * k).reshape(R, k)

    if ev_fault is not None and telemetry.enabled():
        # Suppressed would-be successes, matching the object engine's
        # per-round attribution: singleton among live pre-stop events,
        # not jammed; noise wins when both components drew the round.
        live = g <= cutoff
        singles = _segment_singletons(gk[live], ev_jammed[live])
        fault_hits = int(np.count_nonzero(ev_fault[live][singles]))
        noise_hits = int(np.count_nonzero(ev_noise[live][singles]))
        telemetry.count("fault.runs", R)
        telemetry.count("fault.slots_corrupted", noise_hits)
        telemetry.count("fault.acks_dropped", fault_hits - noise_hits)

    completed = t_stop < _INF
    rounds_executed = np.where(completed, t_stop, max_rounds)
    if stop is StopCondition.ALL_SWITCHED_OFF:
        # A station switches off on its ack (ack semantics) or one round
        # past its schedule horizon; with neither it never does and the
        # run cannot complete — matching the sequential engines.
        pend = ~completed
        if pend.any():
            acked = np.logical_and(ack, fs_rep < _INF)
            if sched_horizon is not None:
                off = np.where(acked, fs_rep, wake_all + sched_horizon + 1)
            else:
                off = np.where(acked, fs_rep, _INF)
            done = pend & (off.max(axis=1) <= max_rounds)
            completed |= done
            rounds_executed = np.where(done, off.max(axis=1), rounds_executed)

    # --- materialise per-repetition RunResults ---------------------------
    # Success and switch-off rounds are resolved into whole-batch arrays
    # first; the -1 "never" sentinel becomes None inside object arrays, so
    # tolist() converts every field to its final json-safe value in one C
    # pass and the loop is pure record construction.
    protocol_name = getattr(schedule, "name", "")
    adversary_name = getattr(adversary, "name", "")
    won = fs_rep != _INF
    success = np.where(won, fs_rep, -1)
    if sched_horizon is not None:
        off_sched = wake_all + (sched_horizon + 1)
        switch_off = np.where(off_sched <= rounds_executed[:, None], off_sched, -1)
    else:
        switch_off = np.full((R, k), -1, dtype=np.int64)
    if ack:
        switch_off = np.where(won, fs_rep, switch_off)
    success_obj = success.astype(object)
    success_obj[success < 0] = None
    switch_off_obj = switch_off.astype(object)
    switch_off_obj[switch_off < 0] = None
    wake_l = wake_all.tolist()
    suc_l = success_obj.tolist()
    off_l = switch_off_obj.tolist()
    att_l = attempts.tolist()
    rounds_l = rounds_executed.tolist()
    comp_l = completed.tolist()
    station_ids = range(k)
    record = StationRecord  # positional: id, wake, first_success, off, tx
    results: list[RunResult] = []
    for r in range(R):
        records = list(
            map(record, station_ids, wake_l[r], suc_l[r], off_l[r], att_l[r])
        )
        results.append(
            RunResult(
                records,
                rounds_l[r],
                comp_l[r],
                stop,
                None,
                seed_list[r],
                protocol_name,
                adversary_name,
            )
        )
    if phase:
        phase.lap("batched.materialize")
    return results
