"""Channel round outcomes and per-round event records.

The multiple-access channel of the paper has exactly three per-round
outcomes, determined by the number ``m`` of simultaneous transmitters:

* ``m == 0`` — SILENCE: nothing is heard;
* ``m == 1`` — SUCCESS: the message is delivered to every listening active
  station and the transmitter receives an acknowledgement;
* ``m > 1`` — COLLISION: no message is delivered.  Without collision
  detection a listener cannot distinguish COLLISION from SILENCE.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

__all__ = ["RoundOutcome", "RoundEvent"]


class RoundOutcome(enum.Enum):
    """What happened on the channel in one slot."""

    SILENCE = "silence"
    SUCCESS = "success"
    COLLISION = "collision"

    @staticmethod
    def from_transmitter_count(m: int) -> "RoundOutcome":
        """Map a transmitter count to the channel outcome.

        >>> RoundOutcome.from_transmitter_count(0)
        <RoundOutcome.SILENCE: 'silence'>
        >>> RoundOutcome.from_transmitter_count(1)
        <RoundOutcome.SUCCESS: 'success'>
        >>> RoundOutcome.from_transmitter_count(5)
        <RoundOutcome.COLLISION: 'collision'>
        """
        if m < 0:
            raise ValueError(f"transmitter count cannot be negative, got {m}")
        if m == 0:
            return RoundOutcome.SILENCE
        if m == 1:
            return RoundOutcome.SUCCESS
        return RoundOutcome.COLLISION


@dataclass(frozen=True, slots=True)
class RoundEvent:
    """Immutable record of one channel round (reference-clock time ``t``).

    Attributes:
        round_index: global (reference-clock) round number, starting at 1.
        outcome: the channel outcome of the round.
        transmitter_count: how many stations transmitted.
        winner: station id of the unique transmitter on SUCCESS, else None.
        message: the delivered message payload on SUCCESS, else None.
        jammed: True iff an adversarial jammer fired in the round.  A
            jammed round with at least one transmitter is a COLLISION (the
            jam destroys the transmission); a jammed round with no
            transmitters stays SILENCE — the jam destroys nothing, and
            without collision detection the two are indistinguishable
            anyway.  Both engines account jammed empty rounds as
            non-events.
        corrupted: True iff channel noise (:class:`~repro.faults.SlotNoise`)
            corrupted the slot.  Same outcome algebra as ``jammed``: a
            corrupted round with a unique transmitter is recorded as
            COLLISION — the noise destroys the would-be success.  Noise on
            empty or already-colliding rounds is unobservable and never
            recorded.
    """

    round_index: int
    outcome: RoundOutcome
    transmitter_count: int
    winner: Optional[int] = None
    message: Optional[object] = None
    jammed: bool = False
    corrupted: bool = False

    def __post_init__(self) -> None:
        if (self.jammed or self.corrupted) and self.transmitter_count > 0:
            if self.outcome is not RoundOutcome.COLLISION:
                raise ValueError(
                    "a jammed or noise-corrupted round with transmitters "
                    "must be recorded as COLLISION"
                )
        else:
            expected = RoundOutcome.from_transmitter_count(self.transmitter_count)
            if expected is not self.outcome:
                raise ValueError(
                    f"outcome {self.outcome} inconsistent with "
                    f"{self.transmitter_count} transmitters"
                )
        if (self.outcome is RoundOutcome.SUCCESS) != (self.winner is not None):
            raise ValueError("winner must be set exactly on SUCCESS rounds")
