"""Trace tooling: timelines, gap statistics, run serialisation.

Utilities for inspecting individual executions: render a channel trace as
a one-character-per-round ASCII strip, extract success-gap statistics, and
serialise a :class:`~repro.channel.results.RunResult` to plain dicts /
JSON for archiving or offline plotting.
"""

from __future__ import annotations

import json
from collections.abc import Sequence
from typing import Optional

import numpy as np

from repro.channel.events import RoundEvent, RoundOutcome
from repro.channel.results import RunResult, StopCondition
from repro.core.station import StationRecord

__all__ = [
    "render_timeline",
    "success_gaps",
    "run_result_to_dict",
    "run_result_from_dict",
    "dump_run_result",
    "load_run_result",
]

_GLYPHS = {
    RoundOutcome.SILENCE: ".",
    RoundOutcome.SUCCESS: "S",
    RoundOutcome.COLLISION: "x",
}


def render_timeline(
    trace: Sequence[RoundEvent], *, width: int = 80, max_rows: int = 40
) -> str:
    """One character per round: ``.`` silence, ``S`` success, ``x``
    collision, ``#`` jammed.  Wrapped at ``width`` with round labels."""
    if width < 1:
        raise ValueError(f"width must be >= 1, got {width}")
    glyphs = []
    for event in trace:
        glyphs.append("#" if event.jammed else _GLYPHS[event.outcome])
    lines = []
    for start in range(0, len(glyphs), width):
        if len(lines) >= max_rows:
            lines.append(f"... ({len(glyphs) - start} more rounds)")
            break
        chunk = "".join(glyphs[start : start + width])
        lines.append(f"{start + 1:>8} | {chunk}")
    return "\n".join(lines)


def success_gaps(trace: Sequence[RoundEvent]) -> np.ndarray:
    """Gaps (in rounds) between consecutive SUCCESS events.

    The gap distribution is the fine-grained view of throughput: constant
    throughput = bounded gaps; a stalled protocol shows a heavy tail.
    """
    success_rounds = [
        e.round_index for e in trace if e.outcome is RoundOutcome.SUCCESS
    ]
    if len(success_rounds) < 2:
        return np.empty(0, dtype=np.int64)
    return np.diff(np.asarray(success_rounds, dtype=np.int64))


def run_result_to_dict(result: RunResult) -> dict:
    """Serialise a run (records + aggregates; the trace is summarised, not
    embedded — traces can be huge and carry non-JSON payload objects)."""
    return {
        "schema": 1,
        "k": result.k,
        "rounds_executed": result.rounds_executed,
        "completed": result.completed,
        "stop": result.stop.value,
        "seed": result.seed,
        "protocol_name": result.protocol_name,
        "adversary_name": result.adversary_name,
        "max_latency": result.max_latency,
        "total_transmissions": result.total_transmissions,
        "total_listening_slots": result.total_listening_slots,
        "records": [
            {
                "station_id": r.station_id,
                "wake_round": r.wake_round,
                "first_success_round": r.first_success_round,
                "switch_off_round": r.switch_off_round,
                "transmissions": r.transmissions,
                "listening_slots": r.listening_slots,
            }
            for r in result.records
        ],
    }


def run_result_from_dict(data: dict) -> RunResult:
    """Inverse of :func:`run_result_to_dict` (trace is not restored)."""
    if data.get("schema") != 1:
        raise ValueError(f"unsupported run-result schema: {data.get('schema')!r}")
    records = [
        StationRecord(
            station_id=r["station_id"],
            wake_round=r["wake_round"],
            first_success_round=r["first_success_round"],
            switch_off_round=r["switch_off_round"],
            transmissions=r["transmissions"],
            listening_slots=r.get("listening_slots", 0),
        )
        for r in data["records"]
    ]
    return RunResult(
        records=records,
        rounds_executed=data["rounds_executed"],
        completed=data["completed"],
        stop=StopCondition(data["stop"]),
        trace=None,
        seed=data["seed"],
        protocol_name=data["protocol_name"],
        adversary_name=data["adversary_name"],
    )


def dump_run_result(result: RunResult, path) -> None:
    """Write a run result as JSON to ``path``."""
    with open(path, "w") as handle:
        json.dump(run_result_to_dict(result), handle, indent=1)


def load_run_result(path) -> RunResult:
    """Read a run result previously written by :func:`dump_run_result`."""
    with open(path) as handle:
        return run_result_from_dict(json.load(handle))
