"""Adversarial jamming models (the related-work setting of Section 1.2).

The paper's related-work section surveys contention resolution under
jamming (Awerbuch et al., Richa et al., Bender et al.), including the
result that *without collision detection no constant-throughput algorithm
survives jamming*.  The reproduction includes a jamming substrate so that
robustness experiments can probe the paper's protocols outside their
guarantee envelope.

A jammed round can never carry a successful transmission: transmitters get
no ack and listeners receive nothing (under the no-CD model a jammed round
is indistinguishable from a collision, i.e. from silence).  Jammers are
budget-free here; rate-bounding is expressed by the concrete strategy.
"""

from __future__ import annotations

import abc
from collections.abc import Sequence

import numpy as np

__all__ = [
    "Jammer",
    "RandomJammer",
    "PeriodicJammer",
    "ReactiveJammer",
    "ScheduledJammer",
]


class Jammer(abc.ABC):
    """Decides, per round, whether the channel is jammed."""

    name: str = "jammer"

    def begin(self, rng: np.random.Generator) -> None:
        """Reset state for one execution; default: keep the generator."""
        self._rng = rng

    @abc.abstractmethod
    def jams(self, round_index: int, history: Sequence) -> bool:
        """True iff round ``round_index`` is jammed.  ``history`` is the
        channel event log so far (adaptive jammers may inspect it)."""


class RandomJammer(Jammer):
    """Jam each round independently with probability ``rate``.

    The simplest bounded-fraction jammer: over any long window roughly a
    ``rate`` fraction of slots is destroyed.
    """

    def __init__(self, rate: float):
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"rate must be in [0, 1), got {rate}")
        self.rate = rate
        self.name = f"random-jammer(rate={rate})"

    def jams(self, round_index: int, history: Sequence) -> bool:
        return self.rate > 0.0 and self._rng.random() < self.rate


class PeriodicJammer(Jammer):
    """Jam ``burst`` consecutive rounds out of every ``period``.

    A deterministic duty-cycle jammer; stresses schedules whose critical
    rounds could be phase-locked to the jam window.
    """

    def __init__(self, period: int, burst: int):
        if period < 1:
            raise ValueError(f"period must be >= 1, got {period}")
        if not 0 <= burst <= period:
            raise ValueError(f"burst must be in [0, {period}], got {burst}")
        self.period = period
        self.burst = burst
        self.name = f"periodic-jammer({burst}/{period})"

    def jams(self, round_index: int, history: Sequence) -> bool:
        return round_index % self.period < self.burst


class ReactiveJammer(Jammer):
    """Jam the rounds immediately following a success (adaptive).

    Tries to break any momentum a protocol builds from coordination
    messages — the strategy that hurts ``AdaptiveNoK``'s leader bits most.
    """

    def __init__(self, cooldown: int = 2):
        if cooldown < 1:
            raise ValueError(f"cooldown must be >= 1, got {cooldown}")
        self.cooldown = cooldown
        self.name = f"reactive-jammer(cooldown={cooldown})"
        self._remaining = 0

    def begin(self, rng: np.random.Generator) -> None:
        super().begin(rng)
        self._remaining = 0

    def jams(self, round_index: int, history: Sequence) -> bool:
        from repro.channel.events import RoundOutcome

        if history and history[-1].outcome is RoundOutcome.SUCCESS:
            self._remaining = self.cooldown
        if self._remaining > 0:
            self._remaining -= 1
            return True
        return False


class ScheduledJammer(Jammer):
    """Jam exactly a fixed, pre-drawn set of global rounds (oblivious).

    This is the object-engine counterpart of the vectorised engine's
    ``jam_rounds`` argument: both consume the same round set (e.g. from
    :func:`draw_jam_rounds`), so a jammed configuration can run — and be
    cross-checked — on either engine.
    """

    def __init__(self, rounds):
        self.rounds = frozenset(int(r) for r in rounds)
        self.name = f"scheduled-jammer({len(self.rounds)} rounds)"

    def jams(self, round_index: int, history: Sequence) -> bool:
        return round_index in self.rounds


def draw_jam_rounds(
    rate: float, horizon: int, rng: np.random.Generator
) -> np.ndarray:
    """Pre-draw an oblivious random-jam schedule for the vectorised engine.

    Returns the sorted jammed round indices in ``[1, horizon]``.
    """
    if not 0.0 <= rate < 1.0:
        raise ValueError(f"rate must be in [0, 1), got {rate}")
    if horizon < 1:
        raise ValueError(f"horizon must be >= 1, got {horizon}")
    if rate == 0.0:
        return np.empty(0, dtype=np.int64)
    mask = rng.random(horizon) < rate
    return np.flatnonzero(mask).astype(np.int64) + 1
