"""Run results shared by both simulation engines."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.channel.events import RoundEvent
from repro.core.station import StationRecord

__all__ = ["StopCondition", "RunResult"]


class StopCondition(enum.Enum):
    """When a simulation run is considered complete."""

    #: Every station has switched off (the paper's definition of the task
    #: being accomplished: all packets delivered, all stations disabled).
    ALL_SWITCHED_OFF = "all_switched_off"

    #: Every station has transmitted successfully at least once (used for
    #: the no-acknowledgement variant, where stations never switch off).
    ALL_SUCCEEDED = "all_succeeded"

    #: The first successful transmission (the *wake-up* problem, used to
    #: evaluate ``DecreaseSlowly`` / Theorem 5.1).
    FIRST_SUCCESS = "first_success"


@dataclass(slots=True)
class RunResult:
    """Outcome of one simulated execution.

    Attributes:
        records: one :class:`StationRecord` per station, in station-id order.
        rounds_executed: number of reference-clock rounds simulated.
        completed: whether the stop condition was met before ``max_rounds``.
        stop: the stop condition the run was checked against.
        trace: full per-round event log if tracing was enabled, else None.
        seed: the seed the run was started with (None = OS entropy).
        protocol_name / adversary_name: labels for reporting.
    """

    records: list[StationRecord]
    rounds_executed: int
    completed: bool
    stop: StopCondition
    trace: Optional[list[RoundEvent]] = None
    seed: Optional[int] = None
    protocol_name: str = ""
    adversary_name: str = ""

    @property
    def k(self) -> int:
        return len(self.records)

    @property
    def success_count(self) -> int:
        """How many stations delivered their packet."""
        return sum(1 for r in self.records if r.succeeded)

    @property
    def total_transmissions(self) -> int:
        """The paper's energy metric: total broadcast attempts, all stations."""
        return sum(r.transmissions for r in self.records)

    @property
    def total_listening_slots(self) -> int:
        """Total receiving rounds across stations (Discussion-section cost).

        Zero for non-adaptive protocols, which never need to receive.
        """
        return sum(r.listening_slots for r in self.records)

    @property
    def latencies(self) -> list[int]:
        """Per-station latencies, only for stations that succeeded."""
        return [r.latency for r in self.records if r.latency is not None]

    @property
    def max_latency(self) -> Optional[int]:
        """The paper's latency metric: max over stations, None if nobody
        succeeded (or, for incomplete runs, max over those who did)."""
        latencies = self.latencies
        return max(latencies) if latencies else None

    @property
    def first_success_round(self) -> Optional[int]:
        """Earliest successful round (the wake-up completion time)."""
        rounds = [r.first_success_round for r in self.records if r.succeeded]
        return min(rounds) if rounds else None

    def summary(self) -> dict[str, object]:
        """Flat dict for table rows / CSV export."""
        return {
            "protocol": self.protocol_name,
            "adversary": self.adversary_name,
            "k": self.k,
            "completed": self.completed,
            "rounds": self.rounds_executed,
            "successes": self.success_count,
            "max_latency": self.max_latency,
            "energy": self.total_transmissions,
            "listening": self.total_listening_slots,
        }
