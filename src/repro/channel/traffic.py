"""Dynamic-arrival traffic: the reduction and the FIFO queue engine.

The classic model of this repository wakes exactly ``k`` one-packet
stations.  A *traffic* :class:`~repro.core.spec.RunSpec` instead has ``k``
station queues fed by an :class:`~repro.adversary.base.ArrivalProcess` —
the injection-rate setting under which the dynamic-arrival literature
(Bender et al.; the early ALOHA queueing story of Section 1.1) studies
stability.  Two queue disciplines are supported:

* ``free`` — every queued packet contends independently from its arrival
  round; the station is an attribution label, not a serialisation point.
  This discipline **reduces exactly** to the classic model: each packet is
  a one-packet station woken at its arrival round.
  :class:`ArrivalWakeSchedule` performs that reduction as an ordinary
  (randomized, oblivious) wake schedule, padded with inert *phantom*
  wakes at ``horizon + 1`` up to the process's deterministic
  ``max_packets`` capacity — so the reduced spec is seed-independent and
  runs unchanged on the object engine, the vectorised engine, *and* the
  fused batched kernel, with the existing cross-check machinery proving
  agreement.

* ``fifo`` — each station transmits only its head-of-line packet; the
  next packet's protocol starts when it reaches the head.  That coupling
  is history-dependent (who is head depends on past channel outcomes), so
  it runs only on :class:`QueueSimulator`, this module's object engine.

Both disciplines draw the *same* packet realisation from the same
adversary stream (generator #0 of ``RngFactory(seed)``), so per-seed
traffic is comparable across disciplines, and :func:`draw_packets` can
re-materialise the exact ``(arrival_rounds, origins)`` arrays of a run
for analysis without touching engine internals.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.channel.events import RoundEvent, RoundOutcome
from repro.channel.feedback import make_observation
from repro.channel.jamming import ScheduledJammer
from repro.channel.results import RunResult, StopCondition
from repro.adversary.base import WakeSchedule
from repro.core.spec import RunSpec
from repro.core.station import QueuedStation, StationRecord
from repro.telemetry import registry as telemetry
from repro.util.rng import RngFactory

__all__ = [
    "ArrivalWakeSchedule",
    "traffic_reduction",
    "draw_packets",
    "QueueSimulator",
]


class ArrivalWakeSchedule(WakeSchedule):
    """A packet-level wake schedule reducing free-discipline traffic.

    One "station" per *potential* packet: a draw of the arrival process
    becomes the wake rounds of its packets, padded with phantom wakes at
    ``horizon + 1`` up to the deterministic ``capacity``
    (``arrivals.max_packets``).  Phantoms are inert — they never wake
    inside the horizon, transmit nothing, and are filtered by the
    analysis layer (``wake_round > horizon``) — but they make the reduced
    spec's ``k`` seed-independent, which is exactly what the batched
    kernel needs to fuse repetitions.
    """

    def __init__(self, arrivals, stations: int, horizon: int):
        if horizon < 1:
            raise ValueError(f"horizon must be >= 1, got {horizon}")
        self.arrivals = arrivals
        self.stations = stations
        self.horizon = horizon
        self.capacity = max(1, int(arrivals.max_packets(stations, horizon)))
        self.name = f"traffic[{arrivals.name}@{stations}q]"

    def wake_rounds(self, k: int, rng: np.random.Generator) -> list[int]:
        if k != self.capacity:
            raise ValueError(
                f"{self.name}: capacity is {self.capacity} packets but "
                f"k={k} was requested"
            )
        rounds, _origins = self.arrivals.draw(self.stations, self.horizon, rng)
        padded = np.full(self.capacity, self.horizon + 1, dtype=np.int64)
        padded[: rounds.size] = rounds
        return self.validate(padded, k)


def traffic_reduction(spec: RunSpec) -> RunSpec:
    """The packet-level classic spec equivalent to a free-discipline
    traffic spec (identical per-seed behaviour on every engine).

    Station ``j`` of the reduced spec is packet ``j`` of the draw (both
    orderings are sorted by arrival round, same stream), so positions
    align with :func:`draw_packets` for origin attribution.
    """
    if not spec.is_traffic_run:
        raise ValueError("traffic_reduction needs a traffic RunSpec")
    if spec.queue_discipline != "free":
        raise ValueError(
            f"only free-discipline traffic reduces to the classic model; "
            f"got {spec.queue_discipline!r}"
        )
    wrapper = ArrivalWakeSchedule(spec.arrivals, spec.k, spec.resolve_horizon())
    return spec.replace(
        arrivals=None, adversary=wrapper, k=wrapper.capacity
    )


def draw_packets(spec: RunSpec) -> tuple[np.ndarray, np.ndarray]:
    """Re-materialise the exact ``(arrival_rounds, origins)`` realisation
    of a seeded traffic spec — the same draw every engine consumed (the
    arrival process reads generator #0 of ``RngFactory(seed)``, exactly
    like an oblivious wake schedule)."""
    if not spec.is_traffic_run:
        raise ValueError("draw_packets needs a traffic RunSpec")
    rng = RngFactory(spec.seed).next_generator()
    return spec.arrivals.draw(spec.k, spec.resolve_horizon(), rng)


class QueueSimulator:
    """Object engine for ``fifo`` queued traffic.

    The slot loop mirrors :class:`~repro.channel.simulator.SlotSimulator`
    (same RNG fan-out: generator #0 to the arrival draw, one per packet
    protocol in promotion order, jammer stream in between — so a FIFO run
    whose queues never hold two packets is byte-identical to the free
    reduction for deterministic schedules).  Records are per *packet*, in
    arrival order, with ``wake_round`` = arrival round.
    """

    def __init__(self, spec: RunSpec):
        if not spec.is_traffic_run:
            raise ValueError("QueueSimulator needs a traffic RunSpec")
        if spec.queue_discipline != "fifo":
            raise ValueError(
                "QueueSimulator implements the fifo discipline; "
                "free-discipline traffic runs through traffic_reduction"
            )
        self.spec = spec

    def run(self) -> RunResult:
        spec = self.spec
        horizon = spec.resolve_horizon()
        rng_factory = RngFactory(spec.seed)
        adversary_rng = rng_factory.next_generator()
        jammer = spec.jammer
        if jammer is None and spec.jam_rounds is not None:
            jammer = ScheduledJammer(spec.jam_rounds)
        if jammer is not None:
            jammer.begin(rng_factory.next_generator())

        arr_rounds, arr_origins = spec.arrivals.draw(
            spec.k, horizon, adversary_rng
        )
        n_packets = int(arr_rounds.size)
        by_round: dict[int, list[int]] = {}
        for packet_id, r in enumerate(arr_rounds):
            by_round.setdefault(int(r), []).append(packet_id)

        factory = spec.protocol_factory
        queues = [
            QueuedStation(i, factory, rng_factory.next_generator)
            for i in range(spec.k)
        ]
        records: dict[int, StationRecord] = {}
        history: list[RoundEvent] = []
        delivered_count = 0
        resolved = 0

        def admit(at_round: int) -> None:
            for packet_id in by_round.pop(at_round, ()):
                queues[int(arr_origins[packet_id])].enqueue(packet_id, at_round)

        def stop_met() -> bool:
            if spec.stop is StopCondition.FIRST_SUCCESS:
                return delivered_count >= 1
            if spec.stop is StopCondition.ALL_SUCCEEDED:
                return delivered_count >= n_packets
            return resolved >= n_packets

        admit(0)
        t = 0
        while t < horizon:
            t += 1
            # 1. Packets arriving at the start of round t join their queue.
            admit(t)

            # 2. Heads with local round >= 1 decide.
            transmitters: list[tuple[QueuedStation, object]] = []
            for queue in queues:
                head = queue.head
                if head is None or head.local_round(t) < 1:
                    continue
                decision = head.decide(t)
                if decision is not None:
                    transmitters.append((queue, decision.payload))

            # 3. Resolve the channel (jam semantics match SlotSimulator:
            # a jam in an empty round destroys nothing).
            m = len(transmitters)
            jammed = jammer is not None and jammer.jams(t, history)
            if jammed and m > 0:
                outcome = RoundOutcome.COLLISION
            else:
                outcome = RoundOutcome.from_transmitter_count(m)
            winner: Optional[QueuedStation] = None
            delivered: Optional[object] = None
            if outcome is RoundOutcome.SUCCESS:
                winner, delivered = transmitters[0]

            history.append(
                RoundEvent(
                    round_index=t,
                    outcome=outcome,
                    transmitter_count=m,
                    winner=(
                        winner.head.station_id if winner is not None else None
                    ),
                    message=delivered,
                    jammed=jammed,
                )
            )

            # 4. Observations to every head active this round.
            transmitted_ids = {q.head.station_id for q, _ in transmitters}
            for queue in queues:
                head = queue.head
                if head is None or head.local_round(t) < 1:
                    continue
                obs = make_observation(
                    local_round=head.local_round(t),
                    transmitted=head.station_id in transmitted_ids,
                    outcome=outcome,
                    is_winner=winner is not None and queue is winner,
                    delivered=delivered,
                    model=spec.feedback,
                )
                # Deliveries count at the success round (SlotSimulator
                # semantics), not at head retirement — FIRST_SUCCESS /
                # ALL_SUCCEEDED stop the moment the ack lands.
                was_succeeded = head.first_success_round is not None
                head.observe(obs, t)
                if head.first_success_round is not None and not was_succeeded:
                    delivered_count += 1

            # 5. Retire switched-off heads; the next packet becomes head
            # this round (it may first transmit at t + 1).
            for queue in queues:
                record = queue.finish_head_if_done(t)
                if record is not None:
                    records[record.station_id] = record
                    resolved += 1

            if stop_met():
                break

        completed = stop_met()
        for queue in queues:
            for record in queue.drain():
                records[record.station_id] = record

        if telemetry.enabled():
            telemetry.count("traffic.runs")
            telemetry.count("traffic.rounds", t)
            telemetry.count("traffic.packets", n_packets)
            telemetry.count("traffic.delivered", delivered_count)
        return RunResult(
            records=[records[pid] for pid in sorted(records)],
            rounds_executed=t,
            completed=completed,
            stop=spec.stop,
            trace=history if spec.record_trace else None,
            seed=spec.seed,
            protocol_name=getattr(factory, "protocol_name", ""),
            adversary_name=spec.arrivals.name,
        )
