"""Channel feedback models.

The paper's setting is **no collision detection**: a listener cannot tell a
collision from silence, and the only transmitter feedback is an
acknowledgement on success.  The splitting-tree baseline (Section 1.1
history) requires collision detection, so a CD model is provided too — used
*only* by that baseline, never by the paper's protocols.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.channel.events import RoundOutcome

__all__ = ["FeedbackModel", "Observation"]


class FeedbackModel(enum.Enum):
    """How much of the channel outcome stations can perceive."""

    #: Paper model: transmitters get an ack iff successful; listeners receive
    #: the message on success and hear nothing otherwise (silence and
    #: collision are indistinguishable).
    ACK_ONLY = "ack_only"

    #: Ternary feedback: every active station learns SILENCE / SUCCESS /
    #: COLLISION each round.  Used only by baselines that need it.
    COLLISION_DETECTION = "collision_detection"


@dataclass(frozen=True, slots=True)
class Observation:
    """What one station perceives at the end of one round.

    Attributes:
        local_round: the round index on the station's *local* clock.
        transmitted: whether this station transmitted this round.
        acked: True iff this station transmitted and was the sole transmitter.
        message: the delivered payload if this station was listening and the
            round was a SUCCESS by *another* station; None otherwise.
        channel: the true channel outcome — populated only under
            COLLISION_DETECTION; None under ACK_ONLY (listeners must not be
            able to branch on collision vs silence).
    """

    local_round: int
    transmitted: bool
    acked: bool
    message: Optional[object] = None
    channel: Optional[RoundOutcome] = None

    def __post_init__(self) -> None:
        if self.acked and not self.transmitted:
            raise ValueError("a station cannot be acked without transmitting")
        if self.transmitted and self.message is not None:
            raise ValueError("a transmitting station does not receive messages")


def make_observation(
    *,
    local_round: int,
    transmitted: bool,
    outcome: RoundOutcome,
    is_winner: bool,
    delivered: Optional[object],
    model: FeedbackModel,
) -> Observation:
    """Build the per-station observation for a resolved round.

    ``delivered`` is the successful message (if any); it is only exposed to
    listeners.  Under ACK_ONLY the true outcome is withheld.
    """
    message = None
    if not transmitted and outcome is RoundOutcome.SUCCESS:
        message = delivered
    channel = outcome if model is FeedbackModel.COLLISION_DETECTION else None
    return Observation(
        local_round=local_round,
        transmitted=transmitted,
        acked=is_winner,
        message=message,
        channel=channel,
    )
