"""repro — contention resolution on asynchronous shared channels.

A full reproduction of *"Time and Energy Efficient Contention Resolution in
Asynchronous Shared Channels"* (De Marco, Kowalski, Stachowiak; journal
version of the PODC 2017 paper *"Asynchronous Shared Channel"*).

Quick start::

    from repro import NonAdaptiveWithK, RunSpec, UniformRandomSchedule, execute

    k = 256
    result = execute(RunSpec(
        k=k,
        protocol=NonAdaptiveWithK(k),
        adversary=UniformRandomSchedule(span=lambda k: 2 * k),
        seed=7,
    ))
    print(result.max_latency, result.total_transmissions)

``execute`` routes the spec to the right engine automatically (here the
vectorised sampler); the engine classes remain importable for direct use.

See ``examples/`` for runnable scenarios and ``benchmarks/`` for the
table/figure reproductions indexed in DESIGN.md.
"""

from repro.adversary import (
    AdaptiveAdversary,
    AntiLeaderAdversary,
    BatchSchedule,
    BurstOnQuietAdversary,
    DripFeedAdversary,
    FixedSchedule,
    PoissonSchedule,
    StaggeredSchedule,
    StaticSchedule,
    TwoWavesSchedule,
    UniformRandomSchedule,
    WakeOnSuccessAdversary,
    WakeSchedule,
    blocked_prefix_length,
    build_ik_instance,
    build_jk_instance,
)
from repro.channel import (
    FeedbackModel,
    Observation,
    RoundEvent,
    RoundOutcome,
    RunResult,
    SlotSimulator,
    StopCondition,
    VectorizedSimulator,
)
from repro.core import (
    ProbabilitySchedule,
    Protocol,
    ScheduleProtocol,
    Station,
    StationRecord,
    Transmission,
)
from repro.core.protocols import (
    AdaptiveNoK,
    DecreaseSlowly,
    NonAdaptiveWithK,
    SublinearDecrease,
    SUniform,
)
from repro.core.spec import RunSpec
from repro.engine import execute

__version__ = "1.0.0"

__all__ = [
    # adversaries
    "AdaptiveAdversary",
    "AntiLeaderAdversary",
    "BatchSchedule",
    "BurstOnQuietAdversary",
    "DripFeedAdversary",
    "FixedSchedule",
    "PoissonSchedule",
    "StaggeredSchedule",
    "StaticSchedule",
    "TwoWavesSchedule",
    "UniformRandomSchedule",
    "WakeOnSuccessAdversary",
    "WakeSchedule",
    "blocked_prefix_length",
    "build_ik_instance",
    "build_jk_instance",
    # channel
    "FeedbackModel",
    "Observation",
    "RoundEvent",
    "RoundOutcome",
    "RunResult",
    "SlotSimulator",
    "StopCondition",
    "VectorizedSimulator",
    # core
    "ProbabilitySchedule",
    "Protocol",
    "ScheduleProtocol",
    "Station",
    "StationRecord",
    "Transmission",
    # protocols
    "AdaptiveNoK",
    "DecreaseSlowly",
    "NonAdaptiveWithK",
    "SublinearDecrease",
    "SUniform",
    # engine dispatch
    "RunSpec",
    "execute",
]
