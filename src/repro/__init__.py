"""repro — contention resolution on asynchronous shared channels.

A full reproduction of *"Time and Energy Efficient Contention Resolution in
Asynchronous Shared Channels"* (De Marco, Kowalski, Stachowiak; journal
version of the PODC 2017 paper *"Asynchronous Shared Channel"*).

Quick start::

    from repro import (
        NonAdaptiveWithK, UniformRandomSchedule, VectorizedSimulator,
    )

    k = 256
    sim = VectorizedSimulator(
        k,
        NonAdaptiveWithK(k),
        UniformRandomSchedule(span=lambda k: 2 * k),
        max_rounds=40 * k,
        seed=7,
    )
    result = sim.run()
    print(result.max_latency, result.total_transmissions)

See ``examples/`` for runnable scenarios and ``benchmarks/`` for the
table/figure reproductions indexed in DESIGN.md.
"""

from repro.adversary import (
    AdaptiveAdversary,
    AntiLeaderAdversary,
    BatchSchedule,
    BurstOnQuietAdversary,
    DripFeedAdversary,
    FixedSchedule,
    PoissonSchedule,
    StaggeredSchedule,
    StaticSchedule,
    TwoWavesSchedule,
    UniformRandomSchedule,
    WakeOnSuccessAdversary,
    WakeSchedule,
    blocked_prefix_length,
    build_ik_instance,
    build_jk_instance,
)
from repro.channel import (
    FeedbackModel,
    Observation,
    RoundEvent,
    RoundOutcome,
    RunResult,
    SlotSimulator,
    StopCondition,
    VectorizedSimulator,
)
from repro.core import (
    ProbabilitySchedule,
    Protocol,
    ScheduleProtocol,
    Station,
    StationRecord,
    Transmission,
)
from repro.core.protocols import (
    AdaptiveNoK,
    DecreaseSlowly,
    NonAdaptiveWithK,
    SublinearDecrease,
    SUniform,
)

__version__ = "1.0.0"

__all__ = [
    # adversaries
    "AdaptiveAdversary",
    "AntiLeaderAdversary",
    "BatchSchedule",
    "BurstOnQuietAdversary",
    "DripFeedAdversary",
    "FixedSchedule",
    "PoissonSchedule",
    "StaggeredSchedule",
    "StaticSchedule",
    "TwoWavesSchedule",
    "UniformRandomSchedule",
    "WakeOnSuccessAdversary",
    "WakeSchedule",
    "blocked_prefix_length",
    "build_ik_instance",
    "build_jk_instance",
    # channel
    "FeedbackModel",
    "Observation",
    "RoundEvent",
    "RoundOutcome",
    "RunResult",
    "SlotSimulator",
    "StopCondition",
    "VectorizedSimulator",
    # core
    "ProbabilitySchedule",
    "Protocol",
    "ScheduleProtocol",
    "Station",
    "StationRecord",
    "Transmission",
    # protocols
    "AdaptiveNoK",
    "DecreaseSlowly",
    "NonAdaptiveWithK",
    "SublinearDecrease",
    "SUniform",
]
