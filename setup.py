"""Legacy setup shim.

The offline environment ships setuptools but not ``wheel``, so PEP 660
editable installs fail; ``pip install -e . --no-use-pep517`` (or plain
``python setup.py develop``) uses this shim instead.  All metadata lives in
pyproject.toml.
"""

from setuptools import setup

setup()
