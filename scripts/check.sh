#!/usr/bin/env bash
# Contributor smoke check: install, tests, a quick suite pass, one example.
# Usage: bash scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== install (editable) =="
# PEP 517 editable install where the toolchain supports it; minimal /
# offline images without wheel fall back to the legacy path.
if ! python3 -m pip install -e . --quiet 2>/dev/null; then
    echo "(pip editable install unavailable; falling back to setup.py develop)"
    python3 setup.py develop >/dev/null
fi

echo "== engine-dispatch lint =="
# Experiment drivers must go through execute(RunSpec(...)) — constructing
# an engine directly bypasses dispatch, the table cache and the
# checkpoint fingerprint derivation.
if grep -rnE "(SlotSimulator|VectorizedSimulator)\(" src/repro/experiments/; then
    echo "error: direct engine construction under src/repro/experiments/;"
    echo "build a RunSpec and call repro.engine.execute instead."
    exit 1
fi

echo "== bare-print lint =="
# Library code reports through telemetry, logging or return values; bare
# print() belongs only to the CLI and the report renderer.  AST-based so
# docstring examples don't false-positive.
python3 - <<'PYEOF'
import ast, pathlib, sys

ALLOWED = {"src/repro/cli.py", "src/repro/analysis/reporting.py"}
bad = []
for path in sorted(pathlib.Path("src/repro").rglob("*.py")):
    rel = path.as_posix()
    if rel in ALLOWED:
        continue
    tree = ast.parse(path.read_text(), filename=rel)
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "print"
        ):
            bad.append(f"{rel}:{node.lineno}")
if bad:
    print("error: bare print() in library code (use telemetry or return")
    print("values; printing belongs to cli.py / analysis/reporting.py):")
    for loc in bad:
        print(f"  {loc}")
    sys.exit(1)
PYEOF

echo "== unit/integration/property tests =="
# The coverage floor (fail_under) is checked into pyproject.toml under
# [tool.coverage.report]; the gate runs wherever pytest-cov is installed
# (always in CI via the dev extras) and degrades to a plain test run on
# minimal images.
if python3 -c "import pytest_cov" >/dev/null 2>&1; then
    python3 -m pytest tests/ -q --cov=repro --cov-report=term
else
    echo "(pytest-cov unavailable; running without the coverage gate)"
    python3 -m pytest tests/ -q
fi

echo "== quick experiment wiring check =="
python3 -m repro suite --scale quick \
    --only fig1_clocks,fig4_sublinear_schedule,thm51_wakeup \
    --out /tmp/repro-check

echo "== crash-safe resume check =="
python3 -m repro run thm51_wakeup --jobs 2 --task-timeout 300 --max-retries 2 \
    --resume /tmp/repro-check/resume --ks 16,32 --reps 2 >/dev/null
python3 -m repro run thm51_wakeup --jobs 2 --task-timeout 300 --max-retries 2 \
    --resume /tmp/repro-check/resume --ks 16,32 --reps 2 | grep -q "resumed="

echo "== quickstart example =="
python3 examples/quickstart.py

echo "All checks passed."
