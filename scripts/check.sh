#!/usr/bin/env bash
# Contributor smoke check: install, tests, a quick suite pass, one example.
# Usage: bash scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== install (editable) =="
python3 setup.py develop >/dev/null

echo "== unit/integration/property tests =="
python3 -m pytest tests/ -q

echo "== quick experiment wiring check =="
python3 -m repro suite --scale quick \
    --only fig1_clocks,fig4_sublinear_schedule,thm51_wakeup \
    --out /tmp/repro-check

echo "== quickstart example =="
python3 examples/quickstart.py

echo "All checks passed."
