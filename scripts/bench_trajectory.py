#!/usr/bin/env python3
"""Run the engine benchmarks and append the medians to BENCH_engines.json.

The perf trajectory: every invocation runs the pytest-benchmark suites
under ``benchmarks/`` (engine micro-benchmarks + the batched-kernel
benchmark), normalises each case to its *median* ns per operation, and
records the result in ``BENCH_engines.json`` at the repository root,
keyed by the current git SHA.  Re-running on the same commit overwrites
that commit's entry; entries for other commits are preserved, so the file
accumulates a commit-by-commit throughput history.

Usage::

    python scripts/bench_trajectory.py                 # full (1000 reps)
    python scripts/bench_trajectory.py --reps 200      # CI-sized batch
    python scripts/bench_trajectory.py --min-speedup 5 # gate: batched
                                                       # must beat the
                                                       # per-run loop 5x

Exit status is non-zero when the benchmarks fail or the measured batched
speedup falls below ``--min-speedup``.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import tempfile
from datetime import datetime, timezone
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_FILE = REPO_ROOT / "BENCH_engines.json"
BENCH_SUITES = [
    "benchmarks/test_bench_engines.py",
    "benchmarks/test_bench_batched.py",
    "benchmarks/test_bench_compiled.py",
    "benchmarks/test_bench_streaming.py",
    "benchmarks/test_bench_adaptive.py",
    "benchmarks/test_bench_faults.py",
]
#: The two cases whose median ratio is the batching speedup.
BASELINE_CASE = "test_bench_per_run_vectorized_loop"
BATCHED_CASE = "test_bench_batched_kernel"
#: The two cases whose median ratio is the compiled-engine speedup
#: (ISSUE acceptance config: k=64 AdaptiveNoK repetitions).
OBJECT_ADAPTIVE_CASE = "test_bench_object_adaptive_loop"
COMPILED_CASE = "test_bench_compiled_adaptive_batch"
#: The tiled kernel (same config as BATCHED_CASE, budget forcing ~8
#: tiles): its ratio over the per-run loop is the streaming speedup, and
#: its ``extra_info`` carries the measured peak RSS.
STREAMING_CASE = "test_bench_streaming_kernel"
#: One config's tiles sharded across the fork pool: the jobs1/jobs4
#: median ratio is the intra-config sharding speedup (meaningful only on
#: multi-core hosts — see ``host.cpu_count``).
SHARDING_JOBS1_CASE = "test_bench_tile_sharding_jobs1"
SHARDING_JOBS4_CASE = "test_bench_tile_sharding_jobs4"
#: PR 9: adaptive adversaries + CD feedback on the compiled stepper.  The
#: burst pair is the ISSUE acceptance config (1000-rep k=64
#: BurstOnQuietAdversary -> ``adaptive_speedup``); the cd pair is a
#: CdAimd collision-detection baseline row (-> ``cd_speedup``).
OBJECT_BURST_CASE = "test_bench_object_burst_loop"
COMPILED_BURST_CASE = "test_bench_compiled_burst_batch"
OBJECT_CD_CASE = "test_bench_object_cd_loop"
COMPILED_CD_CASE = "test_bench_compiled_cd_batch"
#: PR 10: the fault subsystem.  faulted/clean kernel ratio is the cost of
#: the fault path itself (``fault_overhead``, should hover near 1.0x);
#: the per-run-loop/faulted-kernel ratio is the batching win the fault
#: lowering preserves (``fault_path_speedup``).
FAULT_NONE_CASE = "test_bench_fault_none_kernel"
FAULT_BATCHED_CASE = "test_bench_fault_batched_kernel"
FAULT_PER_RUN_CASE = "test_bench_fault_per_run_loop"


def git_sha() -> str:
    out = subprocess.run(
        ["git", "rev-parse", "HEAD"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        check=True,
    )
    return out.stdout.strip()


def run_benchmarks(reps: int | None, extra_args: list[str]) -> dict:
    """Run the benchmark suites; return pytest-benchmark's JSON report."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    if reps is not None:
        env["REPRO_BENCH_REPS"] = str(reps)
    with tempfile.TemporaryDirectory() as tmp:
        report_path = Path(tmp) / "benchmark.json"
        cmd = [
            sys.executable,
            "-m",
            "pytest",
            *BENCH_SUITES,
            "-q",
            "-p",
            "no:cacheprovider",
            "--benchmark-json",
            str(report_path),
            *extra_args,
        ]
        proc = subprocess.run(cmd, cwd=REPO_ROOT, env=env)
        if proc.returncode != 0:
            raise SystemExit(proc.returncode)
        return json.loads(report_path.read_text())


def host_metadata() -> dict:
    """The execution environment a trajectory entry was measured on.

    Median ns/op numbers are only comparable within one environment; the
    metadata lets the history distinguish a real regression from a
    machine or interpreter change.
    """
    try:
        import numpy
        numpy_version = numpy.__version__
    except Exception:  # pragma: no cover - numpy is a hard dep in practice
        numpy_version = "unavailable"
    return {
        "python": platform.python_version(),
        "numpy": numpy_version,
        "cpu_count": os.cpu_count() or 0,
    }


def normalise(report: dict, reps: int | None) -> dict:
    """pytest-benchmark report -> {case: median ns/op} plus metadata."""
    cases = {}
    for bench in report.get("benchmarks", []):
        case = {
            "median_ns": round(bench["stats"]["median"] * 1e9, 1),
            "rounds": bench["stats"]["rounds"],
        }
        if bench.get("extra_info"):
            case["extra_info"] = bench["extra_info"]
        cases[bench["name"]] = case
    entry = {
        "date": datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ"),
        "reps": reps if reps is not None else int(
            os.environ.get("REPRO_BENCH_REPS", "1000")
        ),
        "host": host_metadata(),
        "cases": cases,
    }
    baseline = cases.get(BASELINE_CASE)
    batched = cases.get(BATCHED_CASE)
    if baseline and batched and batched["median_ns"] > 0:
        entry["batched_speedup"] = round(
            baseline["median_ns"] / batched["median_ns"], 2
        )
    obj_adaptive = cases.get(OBJECT_ADAPTIVE_CASE)
    compiled = cases.get(COMPILED_CASE)
    if obj_adaptive and compiled and compiled["median_ns"] > 0:
        entry["compiled_speedup"] = round(
            obj_adaptive["median_ns"] / compiled["median_ns"], 2
        )
    streaming = cases.get(STREAMING_CASE)
    if baseline and streaming and streaming["median_ns"] > 0:
        entry["streaming_speedup"] = round(
            baseline["median_ns"] / streaming["median_ns"], 2
        )
        peak = streaming.get("extra_info", {}).get("peak_rss_kb")
        if peak is not None:
            entry["streaming_peak_rss_kb"] = int(peak)
    jobs1 = cases.get(SHARDING_JOBS1_CASE)
    jobs4 = cases.get(SHARDING_JOBS4_CASE)
    if jobs1 and jobs4 and jobs4["median_ns"] > 0:
        entry["tile_sharding_speedup"] = round(
            jobs1["median_ns"] / jobs4["median_ns"], 2
        )
    obj_burst = cases.get(OBJECT_BURST_CASE)
    comp_burst = cases.get(COMPILED_BURST_CASE)
    if obj_burst and comp_burst and comp_burst["median_ns"] > 0:
        entry["adaptive_speedup"] = round(
            obj_burst["median_ns"] / comp_burst["median_ns"], 2
        )
    obj_cd = cases.get(OBJECT_CD_CASE)
    comp_cd = cases.get(COMPILED_CD_CASE)
    if obj_cd and comp_cd and comp_cd["median_ns"] > 0:
        entry["cd_speedup"] = round(
            obj_cd["median_ns"] / comp_cd["median_ns"], 2
        )
    fault_none = cases.get(FAULT_NONE_CASE)
    fault_batched = cases.get(FAULT_BATCHED_CASE)
    fault_per_run = cases.get(FAULT_PER_RUN_CASE)
    if fault_none and fault_batched and fault_none["median_ns"] > 0:
        entry["fault_overhead"] = round(
            fault_batched["median_ns"] / fault_none["median_ns"], 2
        )
    if fault_per_run and fault_batched and fault_batched["median_ns"] > 0:
        entry["fault_path_speedup"] = round(
            fault_per_run["median_ns"] / fault_batched["median_ns"], 2
        )
    return entry


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--reps", type=int, default=None,
        help="repetition count for the batched suite "
        "(sets REPRO_BENCH_REPS; default 1000)",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=None,
        help="fail unless batched median throughput beats the per-run "
        "vectorized loop by this factor",
    )
    parser.add_argument(
        "--min-compiled-speedup", type=float, default=None,
        help="fail unless the compiled AdaptiveNoK batch beats the "
        "per-run object loop by this factor",
    )
    parser.add_argument(
        "--min-adaptive-speedup", type=float, default=None,
        help="fail unless the compiled BurstOnQuiet adaptive-adversary "
        "batch beats the per-run object loop by this factor",
    )
    parser.add_argument(
        "--out", type=Path, default=BENCH_FILE,
        help="trajectory file to update (default BENCH_engines.json at "
        "the repo root)",
    )
    args, extra = parser.parse_known_args(argv)

    report = run_benchmarks(args.reps, extra)
    entry = normalise(report, args.reps)
    sha = git_sha()

    trajectory: dict = {"schema": 1, "runs": {}}
    if args.out.exists():
        existing = json.loads(args.out.read_text())
        if isinstance(existing.get("runs"), dict):
            trajectory = existing
    trajectory["runs"][sha] = entry
    args.out.write_text(json.dumps(trajectory, indent=2, sort_keys=True) + "\n")

    for name, case in sorted(entry["cases"].items()):
        print(f"{name}: median {case['median_ns'] / 1e6:.2f} ms")
    speedup = entry.get("batched_speedup")
    if speedup is not None:
        print(f"batched speedup over per-run loop: {speedup:.2f}x")
    compiled_speedup = entry.get("compiled_speedup")
    if compiled_speedup is not None:
        print(
            "compiled speedup over per-run object loop: "
            f"{compiled_speedup:.2f}x"
        )
    streaming_speedup = entry.get("streaming_speedup")
    if streaming_speedup is not None:
        peak = entry.get("streaming_peak_rss_kb")
        rss = f" (peak RSS {peak / 1024:.0f} MiB)" if peak else ""
        print(
            "streaming (tiled) speedup over per-run loop: "
            f"{streaming_speedup:.2f}x{rss}"
        )
    sharding = entry.get("tile_sharding_speedup")
    if sharding is not None:
        print(
            f"intra-config tile sharding jobs=4 vs jobs=1: {sharding:.2f}x "
            f"on {entry['host']['cpu_count']} cores"
        )
    adaptive_speedup = entry.get("adaptive_speedup")
    if adaptive_speedup is not None:
        print(
            "compiled adaptive-adversary speedup over per-run object "
            f"loop: {adaptive_speedup:.2f}x"
        )
    cd_speedup = entry.get("cd_speedup")
    if cd_speedup is not None:
        print(
            "compiled CD-feedback speedup over per-run object loop: "
            f"{cd_speedup:.2f}x"
        )
    fault_overhead = entry.get("fault_overhead")
    if fault_overhead is not None:
        print(
            "faulted kernel cost over the clean kernel: "
            f"{fault_overhead:.2f}x"
        )
    fault_path_speedup = entry.get("fault_path_speedup")
    if fault_path_speedup is not None:
        print(
            "faulted batched speedup over faulted per-run loop: "
            f"{fault_path_speedup:.2f}x"
        )
    print(f"trajectory updated: {args.out} @ {sha[:12]}")

    if args.min_speedup is not None:
        if speedup is None:
            print("error: speedup cases missing from the benchmark report",
                  file=sys.stderr)
            return 1
        if speedup < args.min_speedup:
            print(
                f"error: batched speedup {speedup:.2f}x is below the "
                f"--min-speedup gate {args.min_speedup:g}x",
                file=sys.stderr,
            )
            return 1
    if args.min_compiled_speedup is not None:
        if compiled_speedup is None:
            print(
                "error: compiled speedup cases missing from the benchmark "
                "report",
                file=sys.stderr,
            )
            return 1
        if compiled_speedup < args.min_compiled_speedup:
            print(
                f"error: compiled speedup {compiled_speedup:.2f}x is below "
                f"the --min-compiled-speedup gate "
                f"{args.min_compiled_speedup:g}x",
                file=sys.stderr,
            )
            return 1
    if args.min_adaptive_speedup is not None:
        if adaptive_speedup is None:
            print(
                "error: adaptive speedup cases missing from the benchmark "
                "report",
                file=sys.stderr,
            )
            return 1
        if adaptive_speedup < args.min_adaptive_speedup:
            print(
                f"error: adaptive speedup {adaptive_speedup:.2f}x is below "
                f"the --min-adaptive-speedup gate "
                f"{args.min_adaptive_speedup:g}x",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
